"""Range-image codec (the image-based family: Tu et al. [54], Ahn et al. [1]).

Raw spinning-LiDAR output forms a regular (beam, azimuth) grid, so a frame
is a range *image*: project each point to its nearest grid pixel, store the
radial distance per pixel, compress like an image (delta + Deflate).

The catch — and the paper's argument against this family (Sections 1, 3.3)
— is that *calibrated* clouds do not sit on the grid: reconstructing points
at pixel-center angles moves them tangentially by the calibration offsets,
so the geometric error is bounded by the grid pitch, not by ``q_xyz``.
This codec is included to reproduce that comparison: it reports excellent
ratios and (on calibrated data) errors far above the requested bound.
Points that collide in one pixel are carried verbatim so the point count
(and a one-to-one mapping) is still preserved.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines.base import GeometryCompressor
from repro.datasets.sensors import SensorModel
from repro.entropy.deflate import deflate_compress, deflate_decompress
from repro.entropy.varint import (
    decode_uvarint,
    decode_varints,
    encode_uvarint,
    encode_varints,
)
from repro.geometry.points import PointCloud
from repro.geometry.spherical import cartesian_to_spherical, spherical_to_cartesian

__all__ = ["RangeImageCompressor"]

_HEADER = struct.Struct("<d")


class RangeImageCompressor(GeometryCompressor):
    """Project to the sensor grid, compress ranges as an image.

    Parameters
    ----------
    q_xyz:
        Radial quantization bound.  NOTE: unlike the tree coders, the
        *tangential* error is governed by the angular grid pitch and the
        input's deviation from the grid — not by ``q_xyz``.
    sensor:
        Grid geometry; defaults to the benchmark HDL-64E model.
    """

    name = "RangeImage"

    def __init__(self, q_xyz: float, sensor: SensorModel | None = None) -> None:
        super().__init__(q_xyz)
        self.sensor = sensor if sensor is not None else SensorModel.benchmark_default()

    # -- grid projection ---------------------------------------------------------

    def _project(self, xyz: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(row, col, r) per point; nearest grid cell."""
        tpr = cartesian_to_spherical(xyz)
        beam_angles = self.sensor.phi_angles
        midpoints = (beam_angles[1:] + beam_angles[:-1]) / 2.0
        rows = np.searchsorted(midpoints, tpr[:, 1])
        cols = np.round(tpr[:, 0] / self.sensor.u_theta).astype(np.int64)
        cols %= self.sensor.azimuth_steps
        return rows.astype(np.int64), cols, tpr[:, 2]

    def _grid_assignment(
        self, xyz: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """First-come pixel owners and colliding leftovers.

        Returns (pixel_ids_sorted, r_per_pixel, owner_point_idx, extra_idx).
        """
        rows, cols, radii = self._project(xyz)
        pixel = rows * self.sensor.azimuth_steps + cols
        order = np.argsort(pixel, kind="stable")
        sorted_pixels = pixel[order]
        first_in_run = np.ones(len(order), dtype=bool)
        first_in_run[1:] = sorted_pixels[1:] != sorted_pixels[:-1]
        owners = order[first_in_run]
        extras = order[~first_in_run]
        return sorted_pixels[first_in_run], radii[owners], owners, extras

    # -- codec ---------------------------------------------------------------------

    def compress(self, cloud: PointCloud) -> bytes:
        xyz = cloud.xyz
        out = bytearray()
        encode_uvarint(len(xyz), out)
        if len(xyz) == 0:
            return bytes(out)
        pixels, radii, owners, extras = self._grid_assignment(xyz)
        out += _HEADER.pack(self.leaf_side)
        # Occupancy bitmap of the H x W grid, deflated.
        n_cells = self.sensor.n_beams * self.sensor.azimuth_steps
        bitmap = np.zeros(n_cells, dtype=np.uint8)
        bitmap[pixels] = 1
        packed = np.packbits(bitmap)
        payload = deflate_compress(packed.tobytes())
        encode_uvarint(len(payload), out)
        out += payload
        # Ranges: quantize, delta in scan order, deflate.
        r_ints = np.round(radii / self.leaf_side).astype(np.int64)
        payload = deflate_compress(
            encode_varints(np.diff(r_ints, prepend=np.int64(0)), signed=True)
        )
        encode_uvarint(len(payload), out)
        out += payload
        # Colliding points: carried verbatim (float32) to keep the count.
        encode_uvarint(len(extras), out)
        out += xyz[extras].astype("<f4").tobytes()
        return bytes(out)

    def decompress(self, data: bytes) -> PointCloud:
        n_points, pos = decode_uvarint(data, 0)
        if n_points == 0:
            return PointCloud.empty()
        (step,) = _HEADER.unpack_from(data, pos)
        pos += _HEADER.size
        size, pos = decode_uvarint(data, pos)
        bitmap = np.unpackbits(
            np.frombuffer(deflate_decompress(data[pos : pos + size]), dtype=np.uint8)
        )
        pos += size
        pixels = np.flatnonzero(
            bitmap[: self.sensor.n_beams * self.sensor.azimuth_steps]
        )
        size, pos = decode_uvarint(data, pos)
        deltas = decode_varints(
            deflate_decompress(data[pos : pos + size]), len(pixels), signed=True
        )
        pos += size
        radii = np.cumsum(deltas).astype(np.float64) * step
        rows = pixels // self.sensor.azimuth_steps
        cols = pixels % self.sensor.azimuth_steps
        # Reconstruct AT GRID ANGLES: this is where the tangential error
        # of the image-based family comes from.
        theta = cols * self.sensor.u_theta
        phi = self.sensor.phi_angles[rows]
        grid_points = spherical_to_cartesian(np.column_stack([theta, phi, radii]))
        n_extra, pos = decode_uvarint(data, pos)
        extras = (
            np.frombuffer(data, dtype="<f4", count=3 * n_extra, offset=pos)
            .reshape(n_extra, 3)
            .astype(np.float64)
        )
        return PointCloud(np.vstack([grid_points, extras]))

    def mapping(self, cloud: PointCloud) -> np.ndarray:
        xyz = cloud.xyz
        if len(xyz) == 0:
            return np.empty(0, dtype=np.int64)
        _, _, owners, extras = self._grid_assignment(xyz)
        mapping = np.empty(len(xyz), dtype=np.int64)
        mapping[owners] = np.arange(len(owners))
        mapping[extras] = len(owners) + np.arange(len(extras))
        return mapping

    def tangential_error(self, cloud: PointCloud) -> float:
        """Max Euclidean reconstruction error (the paper's accuracy critique)."""
        decoded = self.decompress(self.compress(cloud))
        return float(
            np.linalg.norm(
                decoded.xyz[self.mapping(cloud)] - cloud.xyz, axis=1
            ).max()
        )
