"""Coordinate compression of sparse points (paper Section 3.5, Figure 6).

Implements the nine-step pipeline for one radial group of sparse points:

1. *Coordinate scaling* — quantize each spherical dimension by twice its
   error bound (``q_theta = q_phi = q_xyz / r_max``, ``q_r = q_xyz``).
2. *Delta encoding* on theta and phi along each polyline.
3. /4. *Reorganization* — heads (original coordinates) and tails (deltas)
   are concatenated into separate streams, polylines back to back.
5. *Lengths* — per-line point counts, arithmetic coded.
6. *Theta streams* — delta-across-heads and within-line deltas, Deflate
   (cross-line repeats make LZ matter here).
7. *Phi streams* — same shape, arithmetic coded (less redundancy).
8. *Radial stream* — radial-distance-optimized delta encoding with the
   consensus reference polyline, plus the ``L_ref`` choice stream.
9. *Output* — length-prefixed stream concatenation.

The ``-Conversion`` ablation keeps the polyline organization but codes
quantized Cartesian ``x, y, z`` instead of ``theta, phi, r`` (see
DESIGN.md §4): the coordinate-system effect on stream entropy is exactly
what the ablation isolates.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro import observability as obs
from repro.core.params import DBGCParams
from repro.entropy.arithmetic import arithmetic_decode, decode_int_sequence
from repro.core.polyline import organize_polylines
from repro.core.reference import (
    decode_radial,
    decode_radial_plain,
    encode_radial,
    encode_radial_plain,
)
from repro.entropy.backend import (
    EntropyBackend,
    decode_tagged_ints,
    decode_tagged_symbols,
    encode_tagged_ints,
    encode_tagged_symbols,
    get_backend,
    resolve_tag,
)
from repro.entropy.deflate import deflate_compress, deflate_decompress
from repro.entropy.varint import (
    decode_uvarint,
    decode_varints,
    encode_uvarint,
    encode_varints,
)
from repro.geometry.spherical import (
    cartesian_to_spherical,
    spherical_error_bounds,
    spherical_to_cartesian,
)

__all__ = ["GroupEncoding", "encode_sparse_group", "decode_sparse_group"]

_RMAX = struct.Struct("<d")


@dataclass
class GroupEncoding:
    """Result of encoding one sparse group."""

    payload: bytes
    #: Local indices (into the group's input array) of outlier points.
    outlier_indices: np.ndarray
    #: Local indices of polyline points, in stored (decoded) order.
    order: np.ndarray
    #: Stream sizes by name, for the breakdown reporting.
    stream_sizes: dict[str, int] = field(default_factory=dict)
    #: Stage wall-clock times: COR (conversion), ORG (organization),
    #: SPA (stream coding) — the Figure 13 breakdown slots.  Durations of
    #: the ``sparse.cor`` / ``sparse.org`` / ``sparse.spa`` spans; zero
    #: when no observability recorder is active (the pipeline always
    #: installs one around :func:`encode_sparse_group`).
    timings: dict[str, float] = field(default_factory=dict)


def _quantize(values: np.ndarray, step: float) -> np.ndarray:
    return np.round(values / step).astype(np.int64)


def _heads_tails(lines: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Split quantized per-line sequences into head/tail delta streams.

    Heads are delta-coded across lines (first head raw); tails are the
    within-line deltas (Step 2), concatenated line after line (Steps 3/4).
    """
    heads = np.asarray([line[0] for line in lines], dtype=np.int64)
    head_deltas = np.diff(heads, prepend=np.int64(0))
    tail_chunks = [np.diff(line) for line in lines if len(line) > 1]
    tails = (
        np.concatenate(tail_chunks) if tail_chunks else np.empty(0, dtype=np.int64)
    )
    return head_deltas, tails


def _rebuild_lines(
    head_deltas: np.ndarray, tails: np.ndarray, lengths: list[int]
) -> list[np.ndarray]:
    """Inverse of :func:`_heads_tails`."""
    heads = np.cumsum(head_deltas)
    lines = []
    pos = 0
    for i, length in enumerate(lengths):
        deltas = tails[pos : pos + length - 1]
        pos += length - 1
        lines.append(np.concatenate([[heads[i]], heads[i] + np.cumsum(deltas)]))
    return lines


_STREAM_DEFLATE = 0
#: Entropy-backend streams use mode byte ``backend.tag + 1``; the adaptive
#: arithmetic backend (tag 0) therefore keeps the historical mode byte 1.


def _pack_stream(
    values: np.ndarray, backend: str | EntropyBackend = "adaptive-arith"
) -> bytes:
    """Entropy-code an int stream with the better of Deflate / the backend.

    The paper uses Deflate for the azimuthal streams because repeated
    cross-line patterns favor LZ matching (Step 6); on data whose deltas
    are near-constant-with-noise the entropy backend wins instead.  A
    one-byte mode tag records the choice (0 = Deflate, otherwise
    ``backend.tag + 1``), so the codec always takes the smaller encoding
    and the decoder follows the stream, not the configuration.
    """
    b = get_backend(backend)
    deflated = deflate_compress(encode_varints(values, signed=True))
    coded = b.encode_ints(values)
    if len(deflated) < len(coded):
        return bytes([_STREAM_DEFLATE]) + deflated
    return bytes([b.tag + 1]) + coded


def _unpack_stream(
    data: bytes,
    count: int,
    preferred: EntropyBackend | None = None,
    version: int = 2,
) -> np.ndarray:
    """Inverse of :func:`_pack_stream`.

    ``version=1`` reads the legacy layout, where mode byte 1 was a
    checksum-less arithmetic int sequence rather than a backend tag.
    """
    if not data:
        raise ValueError("empty entropy stream")
    mode, payload = data[0], data[1:]
    if mode == _STREAM_DEFLATE:
        return decode_varints(deflate_decompress(payload), count, signed=True)
    if version == 1:
        if mode != 1:
            raise ValueError(f"unknown stream mode byte {mode}")
        values = decode_int_sequence(payload, checksum=False)
        if values.size != count:
            raise ValueError("entropy stream count mismatch")
        return values
    try:
        backend = resolve_tag(mode - 1, preferred)
    except ValueError:
        raise ValueError(f"unknown stream mode byte {mode}") from None
    values = backend.decode_ints(payload)
    if values.size != count:
        raise ValueError("entropy stream count mismatch")
    return values


def _append_stream(out: bytearray, payload: bytes) -> None:
    encode_uvarint(len(payload), out)
    out += payload


def _read_stream(data: bytes, pos: int) -> tuple[bytes, int]:
    size, pos = decode_uvarint(data, pos)
    return data[pos : pos + size], pos + size


def encode_sparse_group(
    xyz_group: np.ndarray,
    params: DBGCParams,
    u_theta: float,
    u_phi: float,
) -> GroupEncoding:
    """Encode one radial group of sparse points.

    Returns the group payload plus the outlier indices (points on no
    polyline of length >= 2) and the stored point order for correspondence.
    """
    xyz_group = np.asarray(xyz_group, dtype=np.float64)
    n_input = len(xyz_group)
    if n_input == 0:
        out = bytearray()
        encode_uvarint(0, out)
        return GroupEncoding(bytes(out), np.empty(0, np.int64), np.empty(0, np.int64))

    with obs.span("sparse.cor") as sp_cor:
        tpr = cartesian_to_spherical(xyz_group)
        theta, phi, radius = tpr[:, 0], tpr[:, 1], tpr[:, 2]

    with obs.span("sparse.org") as sp_org:
        if params.spherical_conversion:
            all_lines = organize_polylines(theta, phi, xyz_group, u_theta, u_phi)
        else:
            # -Conversion ablation: extract polylines in the Cartesian system
            # (x plays the scan axis, y the line-grouping axis).  The window is
            # the typical along-scan spacing at the group's median range; rings
            # are circles in the xy plane, so extraction fragments badly — the
            # effect the ablation quantifies.
            window = max(float(np.median(radius)) * u_theta, 4.0 * params.q_xyz)
            all_lines = organize_polylines(
                xyz_group[:, 0], xyz_group[:, 1], xyz_group, window, window
            )
        lines = [line for line in all_lines if len(line) >= 2]
        outliers = (
            np.concatenate([line for line in all_lines if len(line) < 2])
            if any(len(line) < 2 for line in all_lines)
            else np.empty(0, dtype=np.int64)
        )
    if not lines:
        out = bytearray()
        encode_uvarint(0, out)
        return GroupEncoding(
            bytes(out),
            outliers,
            np.empty(0, np.int64),
            timings={"cor": sp_cor.duration, "org": sp_org.duration, "spa": 0.0},
        )
    with obs.span("sparse.spa") as sp_spa:
        r_max = float(max(radius[line].max() for line in lines))
        r_max = max(r_max, 1e-9)
        q_theta, q_phi, q_r = spherical_error_bounds(
            params.q_xyz, r_max, strict_cartesian=params.strict_cartesian
        )

        if params.spherical_conversion:
            d1_all = _quantize(theta, 2.0 * q_theta)
            d2_all = _quantize(phi, 2.0 * q_phi)
            d3_all = _quantize(radius, 2.0 * q_r)
        else:
            step = 2.0 * params.q_xyz
            d1_all = _quantize(xyz_group[:, 0], step)
            d2_all = _quantize(xyz_group[:, 1], step)
            d3_all = _quantize(xyz_group[:, 2], step)

        # Sort polylines by (head polar angle, head azimuth) — paper Line 7.
        # The sort uses quantized values so encoder and decoder agree on the
        # reference-set geometry.
        lines.sort(key=lambda line: (int(d2_all[line[0]]), int(d1_all[line[0]])))
        lines_d1 = [d1_all[line] for line in lines]
        lines_d2 = [d2_all[line] for line in lines]
        lines_d3 = [d3_all[line] for line in lines]
        lengths = [len(line) for line in lines]
        order = np.concatenate(lines)

        backend = get_backend(params.entropy_backend)

        out = bytearray()
        encode_uvarint(int(order.size), out)
        encode_uvarint(len(lines), out)
        out += _RMAX.pack(r_max)
        sizes: dict[str, int] = {}

        payload = encode_tagged_ints(np.asarray(lengths, dtype=np.int64), backend)
        _append_stream(out, payload)
        sizes["lengths"] = len(payload)

        d1_heads, d1_tails = _heads_tails(lines_d1)
        payload = _pack_stream(d1_heads, backend)
        _append_stream(out, payload)
        sizes["d1_heads"] = len(payload)
        payload = _pack_stream(d1_tails, backend)
        _append_stream(out, payload)
        sizes["d1_tails"] = len(payload)

        d2_heads, d2_tails = _heads_tails(lines_d2)
        payload = _pack_stream(d2_heads, backend)
        _append_stream(out, payload)
        sizes["d2_heads"] = len(payload)
        payload = _pack_stream(d2_tails, backend)
        _append_stream(out, payload)
        sizes["d2_tails"] = len(payload)

        if params.spherical_conversion and params.radial_reference:
            th_phi_q = max(int(round(2.0 * u_phi / (2.0 * q_phi))), 0)
            th_r_q = max(int(round(params.th_r / (2.0 * q_r))), 1)
            line_phis = [int(d2[0]) for d2 in lines_d2]
            nabla, symbols = encode_radial(
                lines_d1, lines_d3, line_phis, th_phi_q, th_r_q
            )
            ref_payload = bytearray()
            encode_uvarint(len(symbols), ref_payload)
            if len(symbols):
                ref_payload += encode_tagged_symbols(
                    np.asarray(symbols, dtype=np.int64), 4, backend
                )
        else:
            nabla = encode_radial_plain(lines_d3)
            ref_payload = bytearray()
            encode_uvarint(0, ref_payload)

        payload = encode_tagged_ints(nabla, backend)
        _append_stream(out, payload)
        sizes["d3"] = len(payload)
        _append_stream(out, bytes(ref_payload))
        sizes["l_ref"] = len(ref_payload)
        # Per-stream byte accounting (the Figure 13 size breakdown): each
        # named stream lands on the active span and the bytes.* counters.
        for name, size in sizes.items():
            obs.add_bytes("sparse." + name, size)

    return GroupEncoding(
        bytes(out),
        outliers,
        order,
        sizes,
        timings={
            "cor": sp_cor.duration,
            "org": sp_org.duration,
            "spa": sp_spa.duration,
        },
    )


def decode_sparse_group(
    payload: bytes,
    params: DBGCParams,
    u_theta: float,
    u_phi: float,
    version: int = 2,
) -> np.ndarray:
    """Decode one group payload back to Cartesian coordinates.

    Points come back in stored polyline order (matching
    :attr:`GroupEncoding.order` on the encoder side).  ``version=1``
    selects the legacy stream layouts (checksum-less int sequences, raw
    arithmetic ``L_ref``), so v1 containers decode bit-identically.
    """
    n_points, pos = decode_uvarint(payload, 0)
    if n_points == 0:
        return np.empty((0, 3), dtype=np.float64)
    n_lines, pos = decode_uvarint(payload, pos)
    (r_max,) = _RMAX.unpack_from(payload, pos)
    pos += _RMAX.size
    q_theta, q_phi, q_r = spherical_error_bounds(
        params.q_xyz, r_max, strict_cartesian=params.strict_cartesian
    )

    stream, pos = _read_stream(payload, pos)
    if version == 1:
        lengths = decode_int_sequence(stream, checksum=False).tolist()
    else:
        lengths = decode_tagged_ints(stream).tolist()
    if len(lengths) != n_lines or sum(lengths) != n_points:
        raise ValueError("corrupt sparse group: length stream mismatch")

    n_tail = n_points - n_lines
    stream, pos = _read_stream(payload, pos)
    d1_heads = _unpack_stream(stream, n_lines, version=version)
    stream, pos = _read_stream(payload, pos)
    d1_tails = _unpack_stream(stream, n_tail, version=version)
    lines_d1 = _rebuild_lines(d1_heads, d1_tails, lengths)

    stream, pos = _read_stream(payload, pos)
    d2_heads = _unpack_stream(stream, n_lines, version=version)
    stream, pos = _read_stream(payload, pos)
    d2_tails = _unpack_stream(stream, n_tail, version=version)
    lines_d2 = _rebuild_lines(d2_heads, d2_tails, lengths)

    stream, pos = _read_stream(payload, pos)
    if version == 1:
        nabla = decode_int_sequence(stream, checksum=False)
    else:
        nabla = decode_tagged_ints(stream)
    ref_stream, pos = _read_stream(payload, pos)
    n_symbols, ref_pos = decode_uvarint(ref_stream, 0)

    if params.spherical_conversion and params.radial_reference:
        if version == 1:
            symbols = arithmetic_decode(ref_stream[ref_pos:], n_symbols, 4)
        elif n_symbols:
            symbols = decode_tagged_symbols(ref_stream[ref_pos:], n_symbols, 4)
        else:
            symbols = np.empty(0, dtype=np.int64)
        th_phi_q = max(int(round(2.0 * u_phi / (2.0 * q_phi))), 0)
        th_r_q = max(int(round(params.th_r / (2.0 * q_r))), 1)
        line_phis = [int(d2[0]) for d2 in lines_d2]
        lines_d3 = decode_radial(lines_d1, line_phis, nabla, symbols, th_phi_q, th_r_q)
    else:
        lines_d3 = decode_radial_plain(nabla, lengths)

    d1 = np.concatenate(lines_d1).astype(np.float64)
    d2 = np.concatenate(lines_d2).astype(np.float64)
    d3 = np.concatenate(lines_d3).astype(np.float64)
    if params.spherical_conversion:
        tpr = np.column_stack(
            [d1 * 2.0 * q_theta, d2 * 2.0 * q_phi, d3 * 2.0 * q_r]
        )
        return spherical_to_cartesian(tpr)
    step = 2.0 * params.q_xyz
    return np.column_stack([d1 * step, d2 * step, d3 * step])
