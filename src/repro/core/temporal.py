"""Inter-frame temporal (delta) coding — container format v3.

LiDAR frames along a trajectory are highly redundant: most of the scene
geometry of frame ``i`` is already present — shifted by the ego motion —
in frame ``i - 1``.  This module exploits that redundancy for *stream*
compression while keeping every frame's per-point error bound and the
byte-exact round-trip guarantee of the intra codec:

* **Dense (octree) delta coding.**  Delta frames quantize the dense set on
  a grid whose origin is *chain-snapped* to the previous frame's grid
  (``origin = prev + floor((lo - prev) / leaf) * leaf``) so predictor
  cells and current cells align.  The occupancy bytes are then coded
  bit-by-bit with adaptive binary models conditioned on three predictors
  derived from the previous decoded cloud: its exact occupancy (**E**),
  a radially dilated version (**D**, absorbing the half-leaf jitter of
  re-quantization), and an ego-motion-compensated dilated version
  (**M**).  Models persist across delta frames and reset at keyframes.

* **Sparse radial (d3) delta coding.**  For each polyline point the
  previous frame's decoded sparse points are matched by quantized ray
  ``(theta, phi)`` — raw and motion-compensated — giving two radial
  predictions in addition to the stream-order baseline (the previous
  ``d3``).  Where the candidates disagree by more than a few steps a
  2-bit selector names the best one; the residual stream replaces the
  intra pipeline's consensus-reference ``∇L_r`` / ``L_ref`` tail.  The
  ``theta`` / ``phi`` / length streams are byte-identical to intra coding
  (angle jitter is frame-independent and does not predict well).

Every component carries a leading mode byte and falls back to intra
coding whenever the delta coding is not smaller, so a delta frame is
never worse than its intra equivalent plus a few flag bytes.  Outliers
and attributes are always intra-coded.

Encoder and decoder advance a shared :class:`TemporalContext` in
lockstep; a content CRC of the predictor cloud travels in the v3 header
(:data:`repro.core.container._V3_EXT`) so a decoder that lost state — a
restarted server — detects the mismatch instead of reconstructing wrong
geometry, and resynchronizes at the next keyframe.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.core.attributes import (
    DEFAULT_ATTRIBUTE_STEP,
    decode_attributes,
    encode_attributes,
)
from repro.core.container import (
    container_version,
    pack_container_v3,
    unpack_container,
)
from repro.core.outlier import decode_outliers, encode_outliers
from repro.core.params import DBGCParams
from repro.core.polyline import organize_polylines
from repro.core.reference import encode_radial, encode_radial_plain
from repro.core.sparse_codec import (
    _RMAX,
    _append_stream,
    _heads_tails,
    _pack_stream,
    _quantize,
    _read_stream,
    _rebuild_lines,
    _unpack_stream,
    decode_sparse_group,
    encode_sparse_group,
)
from repro.entropy.arithmetic import (
    AdaptiveModel,
    ArithmeticDecoder,
    ArithmeticEncoder,
)
from repro.entropy.backend import (
    decode_tagged_ints,
    decode_tagged_symbols,
    encode_tagged_ints,
    encode_tagged_symbols,
    get_backend,
)
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.geometry.points import PointCloud
from repro.geometry.spherical import (
    cartesian_to_spherical,
    spherical_error_bounds,
    spherical_to_cartesian,
)
from repro.octree.codec import OctreeCodec
from repro.octree.morton import MAX_DEPTH_3D, deinterleave3, interleave3
from repro.octree.octree import build_octree_structure, expand_occupancy_level

__all__ = [
    "KEYFRAME_MAX_VERSION",
    "MODE_INTRA",
    "MODE_DELTA",
    "TemporalContext",
    "TemporalDecoder",
    "compress_delta",
    "decompress_delta",
    "observe_intra",
    "dense_payload_origin",
]

#: Component mode bytes inside a v3 container.
MODE_INTRA = 0
MODE_DELTA = 1

#: Highest container version that is a self-contained (key)frame; anything
#: above is a delta frame that needs its predecessor's decoded state.
KEYFRAME_MAX_VERSION = 2

#: Adaptivity of the binary occupancy-bit models (faster than the intra
#: byte model's 32 because each context sees far fewer symbols).
_OCC_INCREMENT = 24
#: Candidate spread (in radial quantization steps) above which a selector
#: symbol is spent instead of trusting the motion-compensated match.
_SPREAD_FLAG = 4
#: Same ``(origin, leaf_side)`` header as the intra octree payload.
_DENSE_HEADER = struct.Struct("<4d")


# -- predictor state ---------------------------------------------------------------


class TemporalContext:
    """Predictor state advanced in lockstep by encoder and decoder.

    Holds the previous frame's *decoded* geometry (so both sides agree
    bit-for-bit), the dense grid origin the chain is snapped to, and the
    persistent occupancy-bit models.  ``reset()`` / keyframes clear the
    entropy models; the cloud itself is replaced every frame.
    """

    def __init__(self) -> None:
        self.frames_coded = 0
        self.prev_cloud: np.ndarray | None = None
        self.prev_sparse: np.ndarray | None = None
        self.prev_dense_origin: np.ndarray | None = None
        self.occ_models: dict[tuple, AdaptiveModel] = {}
        self._fingerprint: int | None = None

    @property
    def has_state(self) -> bool:
        return self.prev_cloud is not None

    def reset(self) -> None:
        self.frames_coded = 0
        self.prev_cloud = None
        self.prev_sparse = None
        self.prev_dense_origin = None
        self.occ_models = {}
        self._fingerprint = None

    def fingerprint(self) -> int:
        """CRC-32 of the predictor cloud bytes (0 when no state).

        Content-only on purpose: a decoder that lost its state (server
        restart) rebuilds an identical fingerprint from the next keyframe
        onward, so recovery needs no side channel.
        """
        if self.prev_cloud is None:
            return 0
        if self._fingerprint is None:
            data = np.ascontiguousarray(self.prev_cloud, dtype=np.float64)
            self._fingerprint = zlib.crc32(data.tobytes()) & 0xFFFFFFFF
        return self._fingerprint

    def observe(
        self,
        dense: np.ndarray,
        groups: list[np.ndarray],
        outliers: np.ndarray,
        dense_origin: np.ndarray | None,
        keyframe: bool = False,
    ) -> None:
        """Record one decoded frame as the predictor for the next."""
        if keyframe:
            self.occ_models = {}
        chunks = [np.asarray(c, dtype=np.float64).reshape(-1, 3) for c in groups]
        dense = np.asarray(dense, dtype=np.float64).reshape(-1, 3)
        outliers = np.asarray(outliers, dtype=np.float64).reshape(-1, 3)
        self.prev_sparse = (
            np.vstack(chunks) if chunks else np.empty((0, 3), dtype=np.float64)
        )
        self.prev_cloud = np.vstack([dense, self.prev_sparse, outliers])
        self.prev_dense_origin = (
            None
            if dense_origin is None
            else np.array(dense_origin, dtype=np.float64, copy=True)
        )
        self.frames_coded += 1
        self._fingerprint = None


def _clone_models(models: dict[tuple, AdaptiveModel]) -> dict[tuple, AdaptiveModel]:
    """Deep-copy the adaptive models so a *trial* encode can be discarded."""
    clone: dict[tuple, AdaptiveModel] = {}
    for key, model in models.items():
        fresh = AdaptiveModel(
            model.num_symbols, increment=model.increment, max_total=model.max_total
        )
        fresh._freq = list(model._freq)
        fresh.total = model.total
        fresh._tree = list(model._tree)
        clone[key] = fresh
    return clone


# -- dense (octree occupancy) delta coding ----------------------------------------


def _level_maps(codes: np.ndarray, depth: int) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-level ``(sorted node codes, occupancy bytes)`` of a predictor set."""
    maps = []
    child = np.unique(codes)
    for _ in range(depth):
        parents, inverse = np.unique(child >> 3, return_inverse=True)
        occ = np.zeros(len(parents), dtype=np.int64)
        np.bitwise_or.at(occ, inverse, np.int64(1) << (child & 7))
        maps.append((parents, occ))
        child = parents
    maps.reverse()
    return maps


def _predict_level(
    nodes: np.ndarray, level_map: tuple[np.ndarray, np.ndarray]
) -> np.ndarray:
    """Predictor occupancy byte for each current node (0 where absent)."""
    codes, occ = level_map
    if len(codes) == 0:
        return np.zeros(len(nodes), dtype=np.int64)
    idx = np.minimum(np.searchsorted(codes, nodes), len(codes) - 1)
    return np.where(codes[idx] == nodes, occ[idx], 0)


def _grid_codes(
    points: np.ndarray, origin: np.ndarray, leaf_side: float, depth: int
) -> np.ndarray:
    """Morton codes of the predictor points that land inside the grid."""
    cells = np.floor((points - origin) / leaf_side).astype(np.int64)
    inside = np.all((cells >= 0) & (cells < (1 << depth)), axis=1)
    cells = cells[inside]
    return interleave3(cells[:, 0], cells[:, 1], cells[:, 2])


def _predictor_points(
    prev_cloud: np.ndarray, leaf_side: float, ego_delta
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact / dilated / motion-compensated predictor point sets."""
    radius = np.linalg.norm(prev_cloud, axis=1, keepdims=True)
    radius[radius == 0.0] = 1.0
    unit = prev_cloud / radius
    dilated = np.vstack(
        [prev_cloud, prev_cloud + leaf_side * unit, prev_cloud - leaf_side * unit]
    )
    moved = prev_cloud - np.asarray(ego_delta, dtype=np.float64)[None, :]
    mc_dilated = np.vstack([moved, moved + leaf_side * unit, moved - leaf_side * unit])
    return prev_cloud, dilated, mc_dilated


def _pred_maps(
    prev_cloud: np.ndarray,
    origin: np.ndarray,
    leaf_side: float,
    depth: int,
    ego_delta,
) -> list[list[tuple[np.ndarray, np.ndarray]]]:
    return [
        _level_maps(_grid_codes(points, origin, leaf_side, depth), depth)
        for points in _predictor_points(prev_cloud, leaf_side, ego_delta)
    ]


def _bit_context(level: int, e: int, d: int, m: int, b: int, decoded: int, dpop: int):
    return (
        level,
        (e >> b) & 1,
        (d >> b) & 1,
        (m >> b) & 1,
        b,
        min(bin(decoded).count("1"), 2),
        dpop,
    )


def _code_occupancy(
    occ: np.ndarray,
    pred_maps: list[list[tuple[np.ndarray, np.ndarray]]],
    depth: int,
    models: dict[tuple, AdaptiveModel],
) -> bytes:
    """Context-code the occupancy stream; mutates ``models`` (pass a clone
    for a trial encode and commit it only if delta mode is chosen)."""
    encoder = ArithmeticEncoder()
    nodes = np.zeros(1, dtype=np.int64)
    offset = 0
    for level in range(depth):
        n = len(nodes)
        level_occ = occ[offset : offset + n]
        preds = [_predict_level(nodes, maps[level]) for maps in pred_maps]
        level_bounded = min(level, 6)
        pe, pd, pm = (p.tolist() for p in preds)
        for i, byte in enumerate(level_occ.tolist()):
            e, d, m = pe[i], pd[i], pm[i]
            dpop = min(bin(d).count("1"), 3)
            decoded = 0
            for b in range(8):
                bit = (byte >> b) & 1
                ctx = _bit_context(level_bounded, e, d, m, b, decoded, dpop)
                model = models.get(ctx)
                if model is None:
                    model = AdaptiveModel(2, increment=_OCC_INCREMENT)
                    models[ctx] = model
                cum_low, cum_high = model.cum_range(bit)
                encoder.encode(cum_low, cum_high, model.total)
                model.update(bit)
                decoded |= bit << b
        nodes = expand_occupancy_level(nodes, level_occ.astype(np.uint8))
        offset += n
    return encoder.finish()


def _decode_occupancy(
    payload: bytes,
    pred_maps: list[list[tuple[np.ndarray, np.ndarray]]],
    depth: int,
    models: dict[tuple, AdaptiveModel],
) -> np.ndarray:
    """Mirror of :func:`_code_occupancy`; returns the leaf Morton codes."""
    decoder = ArithmeticDecoder(payload)
    nodes = np.zeros(1, dtype=np.int64)
    for level in range(depth):
        n = len(nodes)
        preds = [_predict_level(nodes, maps[level]) for maps in pred_maps]
        level_bounded = min(level, 6)
        pe, pd, pm = (p.tolist() for p in preds)
        level_occ = np.empty(n, dtype=np.uint8)
        for i in range(n):
            e, d, m = pe[i], pd[i], pm[i]
            dpop = min(bin(d).count("1"), 3)
            decoded = 0
            for b in range(8):
                ctx = _bit_context(level_bounded, e, d, m, b, decoded, dpop)
                model = models.get(ctx)
                if model is None:
                    model = AdaptiveModel(2, increment=_OCC_INCREMENT)
                    models[ctx] = model
                bit = decoder.decode_symbol(model)
                decoded |= bit << b
            level_occ[i] = decoded
        nodes = expand_occupancy_level(nodes, level_occ)
    return nodes


def _leaf_points(
    leaf_codes: np.ndarray, counts: np.ndarray, origin: np.ndarray, leaf_side: float
) -> np.ndarray:
    """Leaf-center reconstruction (shared so both sides agree bitwise)."""
    ix, iy, iz = deinterleave3(leaf_codes)
    centers = np.column_stack(
        [
            origin[0] + (ix + 0.5) * leaf_side,
            origin[1] + (iy + 0.5) * leaf_side,
            origin[2] + (iz + 0.5) * leaf_side,
        ]
    )
    return np.repeat(centers, counts, axis=0)


def dense_payload_origin(dense_payload: bytes) -> np.ndarray | None:
    """Grid origin of a dense payload (intra and delta share the header)."""
    n_points, pos = decode_uvarint(dense_payload, 0)
    if n_points == 0:
        return None
    ox, oy, oz, _leaf = _DENSE_HEADER.unpack_from(dense_payload, pos)
    return np.array([ox, oy, oz], dtype=np.float64)


def _encode_dense_delta(
    xyz: np.ndarray,
    params: DBGCParams,
    context: TemporalContext,
    ego_delta,
    models: dict[tuple, AdaptiveModel],
):
    """Delta-code the dense set on the chain-snapped grid.

    Returns ``(payload, per_point_codes, leaf_codes, leaf_counts, origin)``
    or ``None`` when delta coding is not applicable (empty set, grid
    overflow).  ``models`` is mutated — pass a clone and commit on choice.
    """
    if len(xyz) == 0 or context.prev_cloud is None or len(context.prev_cloud) == 0:
        return None
    leaf = params.leaf_side
    lo = xyz.min(axis=0)
    prev_origin = context.prev_dense_origin
    if prev_origin is None:
        origin = lo
    else:
        origin = prev_origin + np.floor((lo - prev_origin) / leaf) * leaf
    extent = float((xyz.max(axis=0) - origin).max()) + leaf
    depth = max(1, int(np.ceil(np.log2(extent / leaf))))
    if depth > MAX_DEPTH_3D:
        return None
    cells = np.floor((xyz - origin) / leaf).astype(np.int64)
    np.clip(cells, 0, (1 << depth) - 1, out=cells)
    codes = interleave3(cells[:, 0], cells[:, 1], cells[:, 2])
    structure = build_octree_structure(codes, depth)
    occ = structure.occupancy_stream().astype(np.int64)
    maps = _pred_maps(context.prev_cloud, origin, leaf, depth, ego_delta)
    occ_payload = _code_occupancy(occ, maps, depth, models)
    out = bytearray()
    encode_uvarint(len(xyz), out)
    out += _DENSE_HEADER.pack(origin[0], origin[1], origin[2], leaf)
    encode_uvarint(depth, out)
    encode_uvarint(len(occ_payload), out)
    out += occ_payload
    out += encode_tagged_ints(structure.leaf_counts - 1, params.entropy_backend)
    return bytes(out), codes, structure.leaf_codes, structure.leaf_counts, origin


def _decode_dense_delta(
    data: bytes, context: TemporalContext, ego_delta
) -> tuple[np.ndarray, np.ndarray | None]:
    """Inverse of :func:`_encode_dense_delta`; returns ``(points, origin)``.

    Commits the occupancy-model updates into ``context.occ_models``.
    """
    n_points, pos = decode_uvarint(data, 0)
    if n_points == 0:
        return np.empty((0, 3), dtype=np.float64), None
    if context.prev_cloud is None:
        raise ValueError("delta frame without predictor state")
    ox, oy, oz, leaf = _DENSE_HEADER.unpack_from(data, pos)
    pos += _DENSE_HEADER.size
    origin = np.array([ox, oy, oz], dtype=np.float64)
    depth, pos = decode_uvarint(data, pos)
    occ_len, pos = decode_uvarint(data, pos)
    occ_payload = data[pos : pos + occ_len]
    pos += occ_len
    maps = _pred_maps(context.prev_cloud, origin, leaf, depth, ego_delta)
    leaf_codes = _decode_occupancy(occ_payload, maps, depth, context.occ_models)
    counts = decode_tagged_ints(data[pos:]) + 1
    if counts.size != leaf_codes.size:
        raise ValueError("leaf count stream does not match occupancy tree")
    return _leaf_points(leaf_codes, counts, origin, leaf), origin


# -- sparse (radial) delta coding --------------------------------------------------


def _row_match(
    d1: np.ndarray, d2: np.ndarray, prev_d1: np.ndarray, prev_d2: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest previous point by quantized ray, searching phi rows ±1.

    Returns ``(matched mask, index into the previous arrays)``; score is
    ``|Δtheta| + 1000 · |row offset|`` so the own row always wins when
    populated.
    """
    order = np.lexsort((prev_d1, prev_d2))
    theta_sorted = prev_d1[order]
    phi_sorted = prev_d2[order]
    big = np.int64(1) << 32
    keys = phi_sorted * big + theta_sorted
    no_match = np.int64(1) << 30
    best = np.full(d1.size, no_match)
    best_idx = np.zeros(d1.size, dtype=np.int64)
    for off in (-1, 0, 1):
        query = (d2 + off) * big + d1
        j = np.searchsorted(keys, query)
        for side in (j - 1, j):
            ok = (side >= 0) & (side < keys.size)
            clipped = np.clip(side, 0, keys.size - 1)
            ok &= phi_sorted[clipped] == (d2 + off)
            score = np.abs(theta_sorted[clipped] - d1) + abs(off) * 1000
            better = ok & (score < best)
            best = np.where(better, score, best)
            best_idx = np.where(better, order[clipped], best_idx)
    return best < no_match, best_idx


def _baseline_refs(d3: np.ndarray, lengths: list[int]) -> np.ndarray:
    """Stream-order previous ``d3`` (0 at each line head)."""
    refs = np.empty_like(d3)
    offset = 0
    for length in lengths:
        refs[offset] = 0
        refs[offset + 1 : offset + length] = d3[offset : offset + length - 1]
        offset += length
    return refs


def _ray_candidates(
    d1: np.ndarray,
    d2: np.ndarray,
    prev_sparse: np.ndarray,
    ego_delta,
    q_theta: float,
    q_phi: float,
    q_r: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Raw and motion-compensated radial predictions per current point.

    Returns ``(matched, r_raw, r_mc)``; ``matched`` requires a hit in
    *both* views so encoder and decoder agree without extra flags.
    """
    prev_sph = cartesian_to_spherical(prev_sparse)
    tq = _quantize(prev_sph[:, 0], 2.0 * q_theta)
    pq = _quantize(prev_sph[:, 1], 2.0 * q_phi)
    rq = _quantize(prev_sph[:, 2], 2.0 * q_r)
    m_raw, idx_raw = _row_match(d1, d2, tq, pq)
    moved = prev_sparse - np.asarray(ego_delta, dtype=np.float64)[None, :]
    mc_sph = cartesian_to_spherical(moved)
    tq_mc = _quantize(mc_sph[:, 0], 2.0 * q_theta)
    pq_mc = _quantize(mc_sph[:, 1], 2.0 * q_phi)
    rq_mc = _quantize(mc_sph[:, 2], 2.0 * q_r)
    m_mc, idx_mc = _row_match(d1, d2, tq_mc, pq_mc)
    return m_raw & m_mc, rq[idx_raw], rq_mc[idx_mc]


def _group_points(
    d1: np.ndarray,
    d2: np.ndarray,
    d3: np.ndarray,
    q_theta: float,
    q_phi: float,
    q_r: float,
) -> np.ndarray:
    """Decoded Cartesian points of one group (matches the intra decoder's
    float expression exactly, so lockstep predictor clouds are bitwise
    identical)."""
    tpr = np.column_stack(
        [
            d1.astype(np.float64) * 2.0 * q_theta,
            d2.astype(np.float64) * 2.0 * q_phi,
            d3.astype(np.float64) * 2.0 * q_r,
        ]
    )
    return spherical_to_cartesian(tpr)


def encode_group_payload(
    xyz_group: np.ndarray,
    params: DBGCParams,
    u_theta: float,
    u_phi: float,
    context: TemporalContext,
    ego_delta,
) -> tuple[bytes, np.ndarray, np.ndarray, dict[str, int], np.ndarray]:
    """Encode one sparse group for a delta frame (mode byte included).

    Builds the intra front (lengths / theta / phi streams, byte-identical
    to :func:`~repro.core.sparse_codec.encode_sparse_group`) plus *both*
    radial tails — the intra consensus-reference tail and the temporal
    predictor tail — and keeps whichever is smaller.  Returns
    ``(payload, outlier_indices, order, stream_sizes, decoded_points)``.
    """
    xyz_group = np.asarray(xyz_group, dtype=np.float64)
    empty = np.empty(0, dtype=np.int64)
    if (
        not params.spherical_conversion
        or context.prev_sparse is None
        or len(context.prev_sparse) == 0
    ):
        enc = encode_sparse_group(xyz_group, params, u_theta, u_phi)
        decoded = decode_sparse_group(enc.payload, params, u_theta, u_phi)
        return (
            bytes([MODE_INTRA]) + enc.payload,
            enc.outlier_indices,
            enc.order,
            dict(enc.stream_sizes),
            decoded,
        )
    if len(xyz_group) == 0:
        out = bytearray([MODE_INTRA])
        encode_uvarint(0, out)
        return bytes(out), empty, empty, {}, np.empty((0, 3), dtype=np.float64)

    tpr = cartesian_to_spherical(xyz_group)
    theta, phi, radius = tpr[:, 0], tpr[:, 1], tpr[:, 2]
    all_lines = organize_polylines(theta, phi, xyz_group, u_theta, u_phi)
    lines = [line for line in all_lines if len(line) >= 2]
    outliers = (
        np.concatenate([line for line in all_lines if len(line) < 2])
        if any(len(line) < 2 for line in all_lines)
        else empty
    )
    if not lines:
        out = bytearray([MODE_INTRA])
        encode_uvarint(0, out)
        return bytes(out), outliers, empty, {}, np.empty((0, 3), dtype=np.float64)

    r_max = max(float(max(radius[line].max() for line in lines)), 1e-9)
    q_theta, q_phi, q_r = spherical_error_bounds(
        params.q_xyz, r_max, strict_cartesian=params.strict_cartesian
    )
    d1_all = _quantize(theta, 2.0 * q_theta)
    d2_all = _quantize(phi, 2.0 * q_phi)
    d3_all = _quantize(radius, 2.0 * q_r)
    lines.sort(key=lambda line: (int(d2_all[line[0]]), int(d1_all[line[0]])))
    lines_d1 = [d1_all[line] for line in lines]
    lines_d2 = [d2_all[line] for line in lines]
    lines_d3 = [d3_all[line] for line in lines]
    lengths = [len(line) for line in lines]
    order = np.concatenate(lines)
    backend = get_backend(params.entropy_backend)

    # The front is byte-identical to the intra encoder (Steps 1-7).
    out = bytearray()
    encode_uvarint(int(order.size), out)
    encode_uvarint(len(lines), out)
    out += _RMAX.pack(r_max)
    sizes: dict[str, int] = {}
    payload = encode_tagged_ints(np.asarray(lengths, dtype=np.int64), backend)
    _append_stream(out, payload)
    sizes["lengths"] = len(payload)
    for name, series in (("d1", lines_d1), ("d2", lines_d2)):
        heads, tails = _heads_tails(series)
        payload = _pack_stream(heads, backend)
        _append_stream(out, payload)
        sizes[name + "_heads"] = len(payload)
        payload = _pack_stream(tails, backend)
        _append_stream(out, payload)
        sizes[name + "_tails"] = len(payload)

    # Intra radial tail: the consensus-reference scheme of Step 8.
    if params.radial_reference:
        th_phi_q = max(int(round(2.0 * u_phi / (2.0 * q_phi))), 0)
        th_r_q = max(int(round(params.th_r / (2.0 * q_r))), 1)
        line_phis = [int(d2[0]) for d2 in lines_d2]
        nabla, symbols = encode_radial(lines_d1, lines_d3, line_phis, th_phi_q, th_r_q)
        ref_payload = bytearray()
        encode_uvarint(len(symbols), ref_payload)
        if len(symbols):
            ref_payload += encode_tagged_symbols(
                np.asarray(symbols, dtype=np.int64), 4, backend
            )
    else:
        nabla = encode_radial_plain(lines_d3)
        ref_payload = bytearray()
        encode_uvarint(0, ref_payload)
    intra_d3 = encode_tagged_ints(nabla, backend)
    intra_tail = bytearray()
    _append_stream(intra_tail, intra_d3)
    _append_stream(intra_tail, bytes(ref_payload))

    # Temporal radial tail: predictor candidates + selector + residual.
    d1 = np.concatenate(lines_d1)
    d2 = np.concatenate(lines_d2)
    d3 = np.concatenate(lines_d3)
    matched, r_raw, r_mc = _ray_candidates(
        d1, d2, context.prev_sparse, ego_delta, q_theta, q_phi, q_r
    )
    r_baseline = _baseline_refs(d3, lengths)
    candidates = np.stack([r_baseline, r_raw, r_mc], axis=1)
    flagged = matched & ((candidates.max(axis=1) - candidates.min(axis=1)) > _SPREAD_FLAG)
    selectors = np.abs(d3[:, None] - candidates).argmin(axis=1)
    refs = np.where(
        matched,
        np.where(flagged, candidates[np.arange(len(d3)), selectors], r_mc),
        r_baseline,
    )
    delta_d3 = encode_tagged_ints(d3 - refs, backend)
    sel_payload = bytearray()
    n_flagged = int(flagged.sum())
    encode_uvarint(n_flagged, sel_payload)
    if n_flagged:
        sel_payload += encode_tagged_symbols(selectors[flagged], 3, backend)
    delta_tail = bytearray()
    _append_stream(delta_tail, delta_d3)
    _append_stream(delta_tail, bytes(sel_payload))

    if len(delta_tail) < len(intra_tail):
        mode = MODE_DELTA
        out += delta_tail
        sizes["d3"] = len(delta_d3)
        sizes["l_sel"] = len(sel_payload)
    else:
        mode = MODE_INTRA
        out += intra_tail
        sizes["d3"] = len(intra_d3)
        sizes["l_ref"] = len(ref_payload)
    decoded = _group_points(d1, d2, d3, q_theta, q_phi, q_r)
    return bytes([mode]) + bytes(out), outliers, order, sizes, decoded


def decode_sparse_group_delta(
    payload: bytes,
    params: DBGCParams,
    u_theta: float,
    u_phi: float,
    context: TemporalContext,
    ego_delta,
) -> np.ndarray:
    """Decode a temporally-coded group payload (mode byte stripped)."""
    n_points, pos = decode_uvarint(payload, 0)
    if n_points == 0:
        return np.empty((0, 3), dtype=np.float64)
    if context.prev_sparse is None or len(context.prev_sparse) == 0:
        raise ValueError("temporal group without predictor state")
    n_lines, pos = decode_uvarint(payload, pos)
    (r_max,) = _RMAX.unpack_from(payload, pos)
    pos += _RMAX.size
    q_theta, q_phi, q_r = spherical_error_bounds(
        params.q_xyz, r_max, strict_cartesian=params.strict_cartesian
    )
    stream, pos = _read_stream(payload, pos)
    lengths = decode_tagged_ints(stream).tolist()
    if len(lengths) != n_lines or sum(lengths) != n_points:
        raise ValueError("corrupt sparse group: length stream mismatch")
    n_tail = n_points - n_lines
    stream, pos = _read_stream(payload, pos)
    d1_heads = _unpack_stream(stream, n_lines)
    stream, pos = _read_stream(payload, pos)
    d1_tails = _unpack_stream(stream, n_tail)
    lines_d1 = _rebuild_lines(d1_heads, d1_tails, lengths)
    stream, pos = _read_stream(payload, pos)
    d2_heads = _unpack_stream(stream, n_lines)
    stream, pos = _read_stream(payload, pos)
    d2_tails = _unpack_stream(stream, n_tail)
    lines_d2 = _rebuild_lines(d2_heads, d2_tails, lengths)

    stream, pos = _read_stream(payload, pos)
    residuals = decode_tagged_ints(stream)
    if residuals.size != n_points:
        raise ValueError("corrupt temporal group: residual stream mismatch")
    sel_stream, pos = _read_stream(payload, pos)
    n_flagged, sel_pos = decode_uvarint(sel_stream, 0)
    if n_flagged:
        selectors = decode_tagged_symbols(sel_stream[sel_pos:], n_flagged, 3)
    else:
        selectors = np.empty(0, dtype=np.int64)

    d1 = np.concatenate(lines_d1)
    d2 = np.concatenate(lines_d2)
    matched, r_raw, r_mc = _ray_candidates(
        d1, d2, context.prev_sparse, ego_delta, q_theta, q_phi, q_r
    )
    # d3 must be reconstructed sequentially: the stream-order baseline (and
    # with it the flag decision) depends on the previous decoded value.
    d3 = np.empty(n_points, dtype=np.int64)
    matched_l = matched.tolist()
    r_raw_l = r_raw.tolist()
    r_mc_l = r_mc.tolist()
    residuals_l = residuals.tolist()
    selectors_l = selectors.tolist()
    sel_i = 0
    idx = 0
    for length in lengths:
        prev_val = 0
        for _ in range(length):
            if matched_l[idx]:
                cands = (prev_val, r_raw_l[idx], r_mc_l[idx])
                if max(cands) - min(cands) > _SPREAD_FLAG:
                    if sel_i >= len(selectors_l):
                        raise ValueError("corrupt temporal group: selector underrun")
                    ref = cands[selectors_l[sel_i]]
                    sel_i += 1
                else:
                    ref = r_mc_l[idx]
            else:
                ref = prev_val
            prev_val = ref + residuals_l[idx]
            d3[idx] = prev_val
            idx += 1
    if sel_i != len(selectors_l):
        raise ValueError("corrupt temporal group: selector stream mismatch")
    return _group_points(d1, d2, d3, q_theta, q_phi, q_r)


# -- frame orchestration -----------------------------------------------------------


def compress_delta(
    compressor,
    cloud: PointCloud,
    context: TemporalContext,
    ego_delta=(0.0, 0.0, 0.0),
    attributes: dict[str, np.ndarray] | None = None,
    attribute_steps=DEFAULT_ATTRIBUTE_STEP,
):
    """Compress one delta frame (format v3) against ``context``.

    ``compressor`` is a :class:`repro.core.pipeline.DBGCCompressor`; the
    frame pipeline mirrors its intra path, with per-component delta/intra
    choice.  ``context`` is advanced to this frame's decoded geometry.
    """
    from repro.core.pipeline import CompressionResult

    if not context.has_state:
        raise ValueError("delta frame requires predictor state (code a keyframe first)")
    params = compressor.params
    xyz = cloud.xyz
    n = len(xyz)
    ego = tuple(float(v) for v in ego_delta)
    fingerprint = context.fingerprint()
    sizes: dict[str, int] = {}

    dense_mask = compressor._classify(xyz)
    dense_idx = np.flatnonzero(dense_mask)
    sparse_idx = np.flatnonzero(~dense_mask)
    from repro.core.grouping import split_into_groups

    radii = np.linalg.norm(xyz[sparse_idx], axis=1) if len(sparse_idx) else None
    groups = (
        split_into_groups(radii, params.effective_n_groups) if len(sparse_idx) else []
    )
    group_globals = [sparse_idx[g] for g in groups]

    # Dense component: intra vs chain-grid delta, smaller wins.
    octree = OctreeCodec(params.leaf_side, backend=params.entropy_backend)
    intra_payload = octree.encode(xyz[dense_idx])
    trial_models = _clone_models(context.occ_models)
    delta_result = _encode_dense_delta(
        xyz[dense_idx], params, context, ego, trial_models
    )
    if delta_result is not None and len(delta_result[0]) < len(intra_payload):
        payload, codes, leaf_codes, leaf_counts, dense_origin = delta_result
        dense_payload = bytes([MODE_DELTA]) + payload
        context.occ_models = trial_models
        dense_decoded = _leaf_points(
            leaf_codes, leaf_counts, dense_origin, params.leaf_side
        )
        order = np.argsort(codes, kind="stable")
        octree_mapping = np.empty(len(codes), dtype=np.int64)
        octree_mapping[order] = np.arange(len(codes))
    else:
        dense_payload = bytes([MODE_INTRA]) + intra_payload
        dense_decoded = octree.decode(intra_payload)
        dense_origin = dense_payload_origin(intra_payload)
        octree_mapping = octree.mapping(xyz[dense_idx]) if len(dense_idx) else None
    sizes["dense"] = len(dense_payload)

    mapping = np.empty(n, dtype=np.int64)
    if octree_mapping is not None:
        mapping[dense_idx] = octree_mapping

    encodings = [
        encode_group_payload(
            xyz[gg], params, compressor.u_theta, compressor.u_phi, context, ego
        )
        for gg in group_globals
    ]
    outlier_global = [
        gg[enc[1]] for gg, enc in zip(group_globals, encodings) if len(enc[1])
    ]
    outliers = (
        np.concatenate(outlier_global) if outlier_global else np.empty(0, dtype=np.int64)
    )
    group_payloads: list[bytes] = []
    groups_decoded: list[np.ndarray] = []
    offset = len(dense_idx)
    n_sparse_coded = 0
    for group_global, (payload, _out_idx, order, enc_sizes, decoded) in zip(
        group_globals, encodings
    ):
        group_payloads.append(payload)
        groups_decoded.append(decoded)
        for name, size in enc_sizes.items():
            sizes[name] = sizes.get(name, 0) + size
        ordered_global = group_global[order]
        mapping[ordered_global] = offset + np.arange(len(ordered_global))
        offset += len(ordered_global)
        n_sparse_coded += len(ordered_global)
    sizes["sparse"] = sum(len(p) for p in group_payloads)

    outlier_payload, outlier_mapping = encode_outliers(xyz[outliers], params)
    if len(outliers):
        mapping[outliers] = offset + outlier_mapping
    sizes["outlier"] = len(outlier_payload)
    outlier_decoded = decode_outliers(outlier_payload, params)

    attribute_payload = b""
    if attributes:
        attribute_payload = encode_attributes(
            attributes, mapping, attribute_steps, backend=params.entropy_backend
        )
        sizes["attributes"] = len(attribute_payload)

    payload = pack_container_v3(
        params,
        compressor.u_theta,
        compressor.u_phi,
        fingerprint,
        ego,
        dense_payload,
        group_payloads,
        outlier_payload,
        attribute_payload,
    )
    context.observe(dense_decoded, groups_decoded, outlier_decoded, dense_origin)
    return CompressionResult(
        payload=payload,
        n_points=n,
        n_dense=len(dense_idx),
        n_sparse=n_sparse_coded,
        n_outliers=len(outliers),
        mapping=mapping,
        timings={},
        stream_sizes=sizes,
    )


def decompress_delta(data: bytes, context: TemporalContext) -> PointCloud:
    """Decompress a v3 delta frame against ``context`` and advance it.

    Raises ``ValueError`` when the context has no predictor state or its
    fingerprint does not match the frame's — the caller (e.g. the ingest
    server) should treat the frame as undecodable and wait for the next
    keyframe.
    """
    header, dense_payload, group_payloads, outlier_payload, _ = unpack_container(data)
    if not header.is_delta:
        raise ValueError("not a delta frame (use observe_intra)")
    if not context.has_state:
        raise ValueError("delta frame without predictor state")
    if header.predictor_fingerprint != context.fingerprint():
        raise ValueError(
            "delta frame predictor fingerprint mismatch "
            f"(frame {header.predictor_fingerprint:#010x}, "
            f"context {context.fingerprint():#010x})"
        )
    params = header.to_params()
    ego = header.ego_delta
    if not dense_payload:
        raise ValueError("truncated DBGC container")
    mode = dense_payload[0]
    body = dense_payload[1:]
    if mode == MODE_DELTA:
        dense, dense_origin = _decode_dense_delta(body, context, ego)
    elif mode == MODE_INTRA:
        dense = OctreeCodec(params.leaf_side).decode(body)
        dense_origin = dense_payload_origin(body)
    else:
        raise ValueError(f"unknown dense mode byte {mode}")
    groups = []
    for group_payload in group_payloads:
        if not group_payload:
            raise ValueError("truncated DBGC container")
        group_mode = group_payload[0]
        group_body = group_payload[1:]
        if group_mode == MODE_DELTA:
            groups.append(
                decode_sparse_group_delta(
                    group_body, params, header.u_theta, header.u_phi, context, ego
                )
            )
        elif group_mode == MODE_INTRA:
            groups.append(
                decode_sparse_group(group_body, params, header.u_theta, header.u_phi)
            )
        else:
            raise ValueError(f"unknown group mode byte {group_mode}")
    outliers = decode_outliers(outlier_payload, params)
    context.observe(dense, groups, outliers, dense_origin)
    return PointCloud(np.vstack([dense, *groups, outliers]))


def observe_intra(context: TemporalContext, data: bytes) -> PointCloud:
    """Decode an intra frame (v1/v2) and make it the predictor state.

    Used by both sides: the writer after coding a keyframe, the stateful
    reader / server for every non-delta frame.
    """
    header, dense_payload, group_payloads, outlier_payload, _ = unpack_container(data)
    if header.is_delta:
        raise ValueError("delta frame passed to observe_intra")
    params = header.to_params()
    version = header.version
    dense = OctreeCodec(params.leaf_side).decode(dense_payload, version=version)
    dense_origin = dense_payload_origin(dense_payload)
    groups = [
        decode_sparse_group(p, params, header.u_theta, header.u_phi, version=version)
        for p in group_payloads
    ]
    outliers = decode_outliers(outlier_payload, params, version=version)
    context.observe(dense, groups, outliers, dense_origin, keyframe=True)
    return PointCloud(np.vstack([dense, *groups, outliers]))


class TemporalDecoder:
    """Stateful frame decoder: feed every frame of a stream in order.

    Intra frames (v1/v2) decode standalone and refresh the predictor
    state; delta frames (v3) decode against it.  Safe for any stream —
    a purely intra stream simply never exercises the delta path.
    """

    def __init__(self) -> None:
        self.context = TemporalContext()

    def decode(self, data: bytes) -> PointCloud:
        if container_version(data) == 3:
            return decompress_delta(data, self.context)
        return observe_intra(self.context, data)

    def decode_with_attributes(
        self, data: bytes
    ) -> tuple[PointCloud, dict[str, np.ndarray]]:
        cloud = self.decode(data)
        header, _, _, _, attribute_payload = unpack_container(data)
        return cloud, decode_attributes(attribute_payload, version=header.version)
