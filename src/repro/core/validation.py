"""Stream validation: decode a DBGC stream and check its contracts.

For archival pipelines (the paper's server may store ``B`` directly) it
matters that a stored stream is *provably* usable later.  The validator
decodes a stream, checks structural consistency, and — when the original
cloud is available — verifies the one-to-one mapping and the error bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.container import unpack_container
from repro.core.params import DBGCParams
from repro.core.pipeline import DBGCCompressor, DBGCDecompressor
from repro.geometry.points import PointCloud

__all__ = ["ValidationReport", "validate_stream"]


@dataclass
class ValidationReport:
    """Outcome of validating one DBGC stream."""

    ok: bool
    n_points: int
    q_xyz: float
    issues: list[str] = field(default_factory=list)
    max_euclidean_error: float | None = None

    def __str__(self) -> str:  # pragma: no cover - convenience formatting
        status = "OK" if self.ok else "FAILED"
        lines = [f"{status}: {self.n_points} points, q = {self.q_xyz} m"]
        if self.max_euclidean_error is not None:
            lines.append(f"max Euclidean error: {self.max_euclidean_error:.5f} m")
        lines.extend(f"- {issue}" for issue in self.issues)
        return "\n".join(lines)


def validate_stream(
    payload: bytes,
    original: PointCloud | None = None,
    sensor=None,
) -> ValidationReport:
    """Decode and check a DBGC stream.

    Structural checks always run: the container parses, every component
    decodes, and the decoded cloud is finite.  With ``original`` given, the
    error-bound contract is verified end-to-end by re-deriving the
    point correspondence (re-compressing with the stream's own header
    parameters — deterministic, so the mapping matches).
    """
    issues: list[str] = []
    try:
        header, *_ = unpack_container(payload)
    except (ValueError, IndexError, KeyError) as exc:
        return ValidationReport(
            ok=False, n_points=0, q_xyz=0.0, issues=[f"container: {exc}"]
        )
    try:
        decoded = DBGCDecompressor().decompress(payload)
    except Exception as exc:  # noqa: BLE001 - report, don't crash
        return ValidationReport(
            ok=False,
            n_points=0,
            q_xyz=header.q_xyz,
            issues=[f"decode: {type(exc).__name__}: {exc}"],
        )
    if not np.isfinite(decoded.xyz).all():
        issues.append("decoded coordinates contain non-finite values")

    max_error: float | None = None
    if original is not None:
        if len(original) != len(decoded):
            issues.append(
                f"point count mismatch: original {len(original)}, "
                f"decoded {len(decoded)}"
            )
        else:
            params = header.to_params()
            compressor = DBGCCompressor(
                params,
                sensor=sensor,
                u_theta=header.u_theta,
                u_phi=header.u_phi,
            )
            result = compressor.compress_detailed(original)
            if result.payload != payload:
                issues.append(
                    "stream does not match a deterministic re-compression of "
                    "the original (different parameters or corrupted data)"
                )
            else:
                diff = decoded.xyz[result.mapping] - original.xyz
                max_error = float(np.linalg.norm(diff, axis=1).max()) if len(diff) else 0.0
                bound = float(np.sqrt(3.0)) * header.q_xyz * (1 + 1e-6)
                if header.strict_cartesian:
                    if float(np.abs(diff).max()) > header.q_xyz * (1 + 1e-6):
                        issues.append("strict per-dimension error bound violated")
                elif max_error > bound:
                    issues.append(
                        f"error bound violated: {max_error:.5f} > {bound:.5f}"
                    )
    return ValidationReport(
        ok=not issues,
        n_points=len(decoded),
        q_xyz=header.q_xyz,
        issues=issues,
        max_euclidean_error=max_error,
    )
