"""Density-based dense/sparse point classification (paper Section 3.2).

Three interchangeable strategies produce a boolean "dense" mask:

- :func:`cluster_exact` — the cell-based recursive method: DBSCAN-style
  expansion from core points, with octree leaf cells used both to prune
  neighbour checks (points in an already-dense cell skip the count) and to
  absorb sparse points that share a cell with a dense one.
- :func:`cluster_approx` — the O(n) approximate grid method of Section 4.3:
  count points in each eps-cell's 3x3x3 neighbourhood, mark cells dense by
  threshold, then dilate dense cells by one ring.
- :func:`split_by_fraction` — the manual nearest-percentile split used by
  the Figure 10 sweep.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.grid import HashGrid

__all__ = ["cluster_dbscan", "cluster_exact", "cluster_approx", "split_by_fraction"]


def cluster_dbscan(xyz: np.ndarray, eps: float, min_pts: int) -> np.ndarray:
    """Classic point-based DBSCAN [15]; returns a boolean dense mask.

    The reference the paper's cell-based method improves on: every visited
    point pays a neighbour count, and clusters expand from core points
    through their eps-neighbourhoods.  Border points (reachable from a core
    point but not core themselves) are part of the cluster, i.e. dense.
    """
    xyz = np.asarray(xyz, dtype=np.float64)
    n = len(xyz)
    dense = np.zeros(n, dtype=bool)
    if n == 0:
        return dense
    grid = HashGrid(xyz, cell_size=eps)
    visited = np.zeros(n, dtype=bool)
    queued = np.zeros(n, dtype=bool)
    for seed in range(n):
        if visited[seed]:
            continue
        visited[seed] = True
        neighbors = grid.neighbors_within(seed, eps)
        if len(neighbors) < min_pts:
            continue  # noise (for now; may later join a cluster as border)
        dense[seed] = True
        stack = neighbors[~queued[neighbors]].tolist()
        queued[neighbors] = True
        while stack:
            p = stack.pop()
            dense[p] = True  # reachable from a core point -> in the cluster
            if visited[p]:
                continue
            visited[p] = True
            p_neighbors = grid.neighbors_within(p, eps)
            if len(p_neighbors) >= min_pts:
                expand = p_neighbors[~queued[p_neighbors]]
                queued[expand] = True
                stack.extend(expand.tolist())
    return dense


def cluster_exact(
    xyz: np.ndarray, eps: float, min_pts: int, cell_side: float
) -> np.ndarray:
    """Cell-based recursive clustering; returns a boolean dense mask.

    Follows the paper's routine: iterate over points; a point in a known
    dense cell is dense without a neighbour count; otherwise it is a core
    point if it has ``min_pts`` neighbours within ``eps``, which marks its
    cell dense; neighbours of dense points are expanded recursively.  A
    second pass promotes every remaining point that sits in a dense cell.
    """
    xyz = np.asarray(xyz, dtype=np.float64)
    n = len(xyz)
    dense = np.zeros(n, dtype=bool)
    if n == 0:
        return dense
    neighbor_grid = HashGrid(xyz, cell_size=eps)
    cells = np.floor(xyz / cell_side).astype(np.int64)
    cell_keys = (
        (cells[:, 0] + (1 << 20)) << 42
        | (cells[:, 1] + (1 << 20)) << 21
        | (cells[:, 2] + (1 << 20))
    )
    dense_cells: set[int] = set()
    checked = np.zeros(n, dtype=bool)
    queued = np.zeros(n, dtype=bool)
    for seed in range(n):
        if checked[seed]:
            continue
        stack = [seed]
        queued[seed] = True
        while stack:
            p = stack.pop()
            if checked[p]:
                continue
            checked[p] = True
            if int(cell_keys[p]) in dense_cells:
                # The pruning that makes the cell-based method beat DBSCAN:
                # a point in a known dense cell is dense without a neighbor
                # count; the cluster keeps growing through the core points
                # that marked the cell.
                dense[p] = True
                continue
            neighbors = neighbor_grid.neighbors_within(p, eps)
            if len(neighbors) < min_pts:
                # Backtrack: p stays sparse unless its cell turns dense.
                continue
            dense[p] = True
            dense_cells.add(int(cell_keys[p]))
            expand = neighbors[~queued[neighbors]]
            queued[expand] = True
            stack.extend(expand.tolist())
    # Second pass: sparse points inside dense cells become dense.
    if dense_cells:
        in_dense_cell = np.fromiter(
            (int(k) in dense_cells for k in cell_keys), dtype=bool, count=n
        )
        dense |= in_dense_cell
    return dense


def cluster_approx(xyz: np.ndarray, eps: float, min_pts: int) -> np.ndarray:
    """Approximate O(n) grid clustering; returns a boolean dense mask.

    Cells have side ``eps / 2`` so a cell's 3x3x3 neighbourhood —
    ``(1.5 * eps)^3 ~= 3.4 * eps^3`` — matches the volume of the exact
    method's eps-ball (``4/3 * pi * eps^3 ~= 4.2 * eps^3``), keeping the two
    methods' dense sets comparable at the same ``min_pts`` (the paper:
    "the difference ... is the size and shape of the region").  A cell is
    dense when its neighbourhood holds at least ``min_pts`` points; dense
    cells are then dilated by one ring (a sparse cell with a dense
    surrounding cell becomes dense).  All points in dense cells are dense.
    """
    xyz = np.asarray(xyz, dtype=np.float64)
    n = len(xyz)
    if n == 0:
        return np.zeros(0, dtype=bool)
    cells = np.floor(xyz / (eps / 2.0)).astype(np.int64)
    keys = (
        (cells[:, 0] + (1 << 20)) << 42
        | (cells[:, 1] + (1 << 20)) << 21
        | (cells[:, 2] + (1 << 20))
    )
    unique_keys, inverse, counts = np.unique(keys, return_inverse=True, return_counts=True)
    # Arithmetic (not bitwise) composition: negative components must borrow
    # across the packed 21-bit fields.
    offsets = np.array(
        [
            dx * (1 << 42) + dy * (1 << 21) + dz
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            for dz in (-1, 0, 1)
        ],
        dtype=np.int64,
    )
    # np.unique returns sorted keys, so each offset's occupancy lookup is a
    # single searchsorted over all occupied cells at once — no Python loop
    # over cells, just 27 vectorized passes.
    neighborhood = np.zeros(len(unique_keys), dtype=np.int64)
    for offset in offsets:
        shifted = unique_keys + offset
        idx = np.searchsorted(unique_keys, shifted)
        idx_clipped = np.minimum(idx, len(unique_keys) - 1)
        hit = unique_keys[idx_clipped] == shifted
        neighborhood += np.where(hit, counts[idx_clipped], 0)
    dense_cell = neighborhood >= min_pts
    # Dilation: a cell adjacent to a dense cell becomes dense.  dense_keys
    # is a subsequence of the sorted unique_keys, so it is itself sorted.
    dense_keys = unique_keys[dense_cell]
    dilated = dense_cell.copy()
    if len(dense_keys):
        for offset in offsets:
            shifted = unique_keys + offset
            idx = np.searchsorted(dense_keys, shifted)
            idx_clipped = np.minimum(idx, len(dense_keys) - 1)
            dilated |= dense_keys[idx_clipped] == shifted
    return dilated[inverse]


def split_by_fraction(xyz: np.ndarray, fraction: float) -> np.ndarray:
    """Mark the ``fraction`` of points nearest the origin as dense.

    The manual split of the Figure 10 experiment (0.0 = everything sparse,
    1.0 = everything octree-coded).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    xyz = np.asarray(xyz, dtype=np.float64)
    n = len(xyz)
    dense = np.zeros(n, dtype=bool)
    count = int(round(n * fraction))
    if count == 0:
        return dense
    radii = np.linalg.norm(xyz, axis=1)
    dense[np.argpartition(radii, count - 1)[:count]] = True
    return dense
