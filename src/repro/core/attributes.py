"""Per-point attribute compression (intensity etc.).

The paper compresses geometry only (Definition 2.1 lists attributes such as
intensity as optional payload).  A deployable codec must carry them, so
DBGC streams may append an attribute block: each named scalar attribute is
reordered into the *decoded point order* (the geometry mapping is known at
compression time and costs no bits), quantized by a per-attribute step,
delta-coded, and arithmetic-coded.  Spatially coherent attributes —
intensity along a scan line — compress well in this order.
"""

from __future__ import annotations

import numpy as np

from repro.entropy.arithmetic import decode_int_sequence
from repro.entropy.backend import (
    EntropyBackend,
    decode_tagged_ints,
    encode_tagged_ints,
)
from repro.entropy.varint import decode_uvarint, encode_uvarint

__all__ = ["encode_attributes", "decode_attributes", "DEFAULT_ATTRIBUTE_STEP"]

#: Intensity-style default: 8-bit precision over a unit range.
DEFAULT_ATTRIBUTE_STEP = 1.0 / 255.0


def encode_attributes(
    attributes: dict[str, np.ndarray],
    mapping: np.ndarray,
    steps: dict[str, float] | float = DEFAULT_ATTRIBUTE_STEP,
    backend: str | EntropyBackend = "adaptive-arith",
) -> bytes:
    """Encode named scalar attributes in decoded point order.

    Parameters
    ----------
    attributes:
        Name -> per-point values, aligned with the *original* point order.
    mapping:
        Original-index -> decoded-index permutation from the geometry pass.
    steps:
        Quantization step per attribute (or one step for all).  The
        reconstruction error per value is at most ``step / 2``.
    backend:
        Entropy backend for the delta streams (streams are tagged, so the
        decoder needs no configuration).
    """
    out = bytearray()
    encode_uvarint(len(attributes), out)
    for name in sorted(attributes):
        values = np.asarray(attributes[name], dtype=np.float64)
        if len(values) != len(mapping):
            raise ValueError(
                f"attribute {name!r} has {len(values)} values for "
                f"{len(mapping)} points"
            )
        step = steps[name] if isinstance(steps, dict) else float(steps)
        if step <= 0:
            raise ValueError(f"attribute step must be positive, got {step}")
        name_bytes = name.encode("utf-8")
        encode_uvarint(len(name_bytes), out)
        out += name_bytes
        out += np.float64(step).tobytes()
        # Reorder to decoded order so the decoder can zip without a permutation.
        reordered = np.empty_like(values)
        reordered[mapping] = values
        ints = np.round(reordered / step).astype(np.int64)
        payload = encode_tagged_ints(np.diff(ints, prepend=np.int64(0)), backend)
        encode_uvarint(len(payload), out)
        out += payload
    return bytes(out)


def decode_attributes(data: bytes, version: int = 2) -> dict[str, np.ndarray]:
    """Inverse of :func:`encode_attributes`; values in decoded point order.

    ``version=1`` reads the legacy checksum-less delta streams.
    """
    if not data:
        return {}
    n_attrs, pos = decode_uvarint(data, 0)
    attributes: dict[str, np.ndarray] = {}
    for _ in range(n_attrs):
        name_len, pos = decode_uvarint(data, pos)
        name = data[pos : pos + name_len].decode("utf-8")
        pos += name_len
        step = float(np.frombuffer(data, dtype=np.float64, count=1, offset=pos)[0])
        pos += 8
        size, pos = decode_uvarint(data, pos)
        if version == 1:
            deltas = decode_int_sequence(data[pos : pos + size], checksum=False)
        else:
            deltas = decode_tagged_ints(data[pos : pos + size])
        pos += size
        attributes[name] = np.cumsum(deltas).astype(np.float64) * step
    return attributes
