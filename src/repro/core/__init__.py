"""The paper's contribution: the DBGC compression scheme.

Public entry points:

- :class:`~repro.core.params.DBGCParams` — scheme configuration.
- :class:`~repro.core.pipeline.DBGCCompressor` /
  :class:`~repro.core.pipeline.DBGCDecompressor` — end-to-end codec.
- The individual components (clustering, polyline organization, sparse
  coordinate codec, outlier codec) for ablations and tests.
"""

from repro.core.clustering import (
    cluster_approx,
    cluster_dbscan,
    cluster_exact,
    split_by_fraction,
)
from repro.core.grouping import split_into_groups
from repro.core.params import DBGCParams
from repro.core.pipeline import CompressionResult, DBGCCompressor, DBGCDecompressor
from repro.core.polyline import organize_polylines

__all__ = [
    "CompressionResult",
    "DBGCCompressor",
    "DBGCDecompressor",
    "DBGCParams",
    "cluster_approx",
    "cluster_dbscan",
    "cluster_exact",
    "organize_polylines",
    "split_by_fraction",
    "split_into_groups",
]
