"""DBGC configuration.

Collects every tunable of the paper's scheme in one place, with the paper's
defaults: error bound ``q_xyz`` (Section 3.1), clustering parameters
``eps = k * q_xyz`` with ``k = 10`` and ``minPts`` derived from the octree
leaf geometry (Section 3.2), three radial point groups (Section 3.5),
radial threshold ``TH_r = 2 m`` (Step 8), and the feature switches used by
the ablation study (Section 4.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.entropy.backend import available_backends

__all__ = ["DBGCParams"]


@dataclass(frozen=True)
class DBGCParams:
    """All parameters of the DBGC compression scheme.

    Attributes
    ----------
    q_xyz:
        Per-dimension Cartesian error bound in meters (paper default 0.02).
    k:
        Clustering radius factor: ``eps = k * q_xyz``; the paper sweeps
        2..100 and settles on 10.
    min_pts:
        DBSCAN core threshold.  ``None`` derives it from ``min_pts_mode``.
    min_pts_mode:
        ``"volume"`` — the paper's formula ``pi * k^3 / 6`` (every leaf cell
        inside the eps-sphere occupied; appropriate for full-rate sensors on
        very dense returns).  ``"surface"`` — ``pi * k^2 / 4`` (every leaf
        cell on a surface disc occupied).  ``"sensor"`` (default) — the
        surface criterion adjusted for the sensor's angular resolution:
        a point is core when its eps-disc is sampled at least as densely
        as a full-rate HDL-64E samples a perpendicular surface at the
        range where its returns saturate the octree leaves; this reduces
        to the surface formula at full resolution and scales the threshold
        down for reduced-rate sensors.  Resolved by the compressor (which
        knows ``u_theta`` / ``u_phi``); ``effective_min_pts`` falls back to
        the surface formula when no sensor is available.  See DESIGN.md §4.
    min_pts_scale:
        Multiplier on the derived ``min_pts``; the calibration knob for
        sensors with reduced angular resolution.
    clustering:
        ``"approx"`` (O(n) grid method of Section 4.3, the default),
        ``"exact"`` (cell-based recursive method of Section 3.2),
        ``"none"`` (everything is sparse), or ``"all-dense"`` (everything
        goes to the octree).
    dense_fraction:
        If set, overrides clustering entirely: this fraction of the points
        nearest the sensor is compressed with the octree (the Figure 10
        sweep).
    n_groups:
        Radial point groups for the sparse pipeline (paper default 3).
    th_r:
        Radial-distance threshold of Step 8, meters (paper default 2.0).
    spherical_conversion:
        ``False`` reproduces the ``-Conversion`` ablation: polyline point
        coordinates are coded in Cartesian space.
    radial_reference:
        ``False`` reproduces ``-Radial``: plain delta coding on r.
    grouping:
        ``False`` reproduces ``-Group``: a single radial group.
    outlier_mode:
        ``"quadtree"`` (the paper's optimized scheme), ``"octree"``, or
        ``"none"`` (outliers stored raw) — the Table 2 comparison.
    strict_cartesian:
        Tighten spherical quantizers by ``1/sqrt(3)`` so the per-dimension
        Cartesian error of polyline points stays below ``q_xyz`` (the
        paper's lemma only bounds the Euclidean error).
    entropy_backend:
        Which entropy coder backs the arithmetic-coded streams
        (occupancy, Δφ, ∇L_r, L_ref, outlier z, counts, attributes):
        ``"adaptive-arith"`` — the paper's adaptive arithmetic coder, or
        ``"rans"`` — the numpy-vectorized semi-static range coder (a
        multi-x speedup at near-parity ratio).  Streams are tagged, so the
        decompressor needs no configuration.
    intra_frame_workers:
        Worker threads for the independent stages inside one frame (dense
        octree, the radial sparse groups, the outlier codec).  ``1``
        (default) keeps the serial path; higher values run the stages on a
        process-wide shared pool.  Payloads are byte-identical either way.
        Runtime-only: not serialized into the container header.
    temporal:
        Enable inter-frame delta coding for stream compression
        (:mod:`repro.core.temporal`, format v3): non-keyframes reuse the
        previous frame's decoded geometry as predictors.  Single-frame
        :meth:`~repro.core.pipeline.DBGCCompressor.compress` is unaffected.
        Runtime-only: the frame type travels in the container version byte.
    keyframe_interval:
        Period of intra-coded keyframes in a temporal stream (default 8):
        frame ``i`` is a keyframe when ``i % keyframe_interval == 0``.
        Keyframes are byte-identical to independent (v2) coding and reset
        all predictor state, bounding loss propagation and giving readers
        a seek/recovery point.
    """

    q_xyz: float = 0.02
    k: int = 10
    min_pts: int | None = None
    min_pts_mode: str = "sensor"
    min_pts_scale: float = 1.0
    clustering: str = "approx"
    dense_fraction: float | None = None
    n_groups: int = 3
    th_r: float = 2.0
    spherical_conversion: bool = True
    radial_reference: bool = True
    grouping: bool = True
    outlier_mode: str = "quadtree"
    strict_cartesian: bool = False
    entropy_backend: str = "adaptive-arith"
    intra_frame_workers: int = 1
    temporal: bool = False
    keyframe_interval: int = 8

    def __post_init__(self) -> None:
        if self.q_xyz <= 0:
            raise ValueError(f"q_xyz must be positive, got {self.q_xyz}")
        if self.k < 2:
            raise ValueError(f"k must be >= 2 (Section 3.2), got {self.k}")
        if self.min_pts is not None and self.min_pts < 1:
            raise ValueError(f"min_pts must be >= 1, got {self.min_pts}")
        if self.min_pts_mode not in ("volume", "surface", "sensor"):
            raise ValueError(f"unknown min_pts_mode {self.min_pts_mode!r}")
        if self.clustering not in ("approx", "exact", "none", "all-dense"):
            raise ValueError(f"unknown clustering mode {self.clustering!r}")
        if self.dense_fraction is not None and not 0.0 <= self.dense_fraction <= 1.0:
            raise ValueError("dense_fraction must be within [0, 1]")
        if self.n_groups < 1:
            raise ValueError(f"n_groups must be >= 1, got {self.n_groups}")
        if self.th_r <= 0:
            raise ValueError(f"th_r must be positive, got {self.th_r}")
        if self.outlier_mode not in ("quadtree", "octree", "none"):
            raise ValueError(f"unknown outlier_mode {self.outlier_mode!r}")
        if self.entropy_backend not in available_backends():
            raise ValueError(
                f"unknown entropy_backend {self.entropy_backend!r}; "
                f"available: {', '.join(available_backends())}"
            )
        if self.intra_frame_workers < 1:
            raise ValueError(
                f"intra_frame_workers must be >= 1, got {self.intra_frame_workers}"
            )
        if self.keyframe_interval < 1:
            raise ValueError(
                f"keyframe_interval must be >= 1, got {self.keyframe_interval}"
            )

    # -- derived values -----------------------------------------------------------

    @property
    def leaf_side(self) -> float:
        """Octree leaf cell side: twice the error bound."""
        return 2.0 * self.q_xyz

    @property
    def eps(self) -> float:
        """Clustering radius ``eps = k * q_xyz``."""
        return self.k * self.q_xyz

    #: Range (meters) at which a full-rate HDL-64E's surface sampling pitch
    #: equals the 2-cm-bound octree leaf side — the operating point implied
    #: by the paper's minPts derivation.
    REFERENCE_DENSE_RANGE_M = 8.4

    @property
    def effective_min_pts(self) -> int:
        """The minPts actually used by the clustering (sensor-agnostic).

        For ``min_pts_mode="sensor"`` this is the surface-formula fallback;
        :meth:`min_pts_for_sensor` gives the resolution-adjusted value.
        """
        if self.min_pts is not None:
            return self.min_pts
        if self.min_pts_mode == "volume":
            # Leaf cells inside the eps-sphere: (4/3 pi eps^3) / (2q)^3.
            base = math.pi * self.k**3 / 6.0
        else:
            # Leaf cells on a surface disc: (pi eps^2) / (2q)^2.
            base = math.pi * self.k**2 / 4.0
        return max(int(base * self.min_pts_scale), 1)

    def min_pts_for_sensor(self, u_theta: float, u_phi: float) -> int:
        """minPts adjusted to a sensor's angular resolution.

        The core criterion is "the eps-disc around the point is sampled at
        least as densely as a reference full-rate spinning LiDAR samples a
        perpendicular surface at :attr:`REFERENCE_DENSE_RANGE_M`":
        ``pi * eps^2 / (r_ref^2 * u_theta * u_phi)``.  At the HDL-64E's
        full resolution this evaluates to the paper's surface count
        (~``pi * k^2 / 4``); halving the resolution halves the threshold
        instead of silently emptying the dense set.
        """
        if self.min_pts is not None:
            return self.min_pts
        if self.min_pts_mode != "sensor":
            return self.effective_min_pts
        r_ref = self.REFERENCE_DENSE_RANGE_M
        base = math.pi * self.eps**2 / (r_ref**2 * u_theta * u_phi)
        return max(int(base * self.min_pts_scale), 2)

    @property
    def effective_n_groups(self) -> int:
        """Number of radial groups after the -Group switch."""
        return self.n_groups if self.grouping else 1

    def with_updates(self, **changes) -> "DBGCParams":
        """Return a copy with fields replaced (dataclass ``replace``)."""
        return replace(self, **changes)
