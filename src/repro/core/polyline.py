"""Sparse point organization into polylines (paper Algorithm 1).

Sparse points are organized into roughly horizontal polylines in the
(theta, phi) plane: a polyline starts at a seed point and is extended to
the right and to the left by repeatedly picking, among points whose polar
angle stays within ``+- u_phi`` of the seed and whose azimuthal angle is
within ``2 * u_theta`` of the current end, the one closest in 3D.

Points that never join a line of length >= 2 are the *outliers* handed to
the outlier compressor.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["organize_polylines"]


class _AngularIndex:
    """Bucketed index over (theta, phi) with lazy deletion."""

    def __init__(self, theta: np.ndarray, phi: np.ndarray, u_theta: float, u_phi: float):
        self.theta = theta
        self.phi = phi
        self.bin_theta = 2.0 * u_theta
        self.bin_phi = 2.0 * u_phi
        bt = np.floor(theta / self.bin_theta).astype(np.int64)
        bp = np.floor(phi / self.bin_phi).astype(np.int64)
        self._bt = bt
        self._bp = bp
        self.alive = np.ones(len(theta), dtype=bool)
        self._buckets: dict[tuple[int, int], list[int]] = {}
        for i in range(len(theta)):
            self._buckets.setdefault((int(bt[i]), int(bp[i])), []).append(i)

    def kill(self, index: int) -> None:
        self.alive[index] = False

    def candidates(
        self,
        theta_lo: float,
        theta_hi: float,
        phi_lo: float,
        phi_hi: float,
    ) -> list[int]:
        """Alive points with theta in (theta_lo, theta_hi] and phi in range."""
        bt_lo = int(np.floor(theta_lo / self.bin_theta))
        bt_hi = int(np.floor(theta_hi / self.bin_theta))
        bp_lo = int(np.floor(phi_lo / self.bin_phi))
        bp_hi = int(np.floor(phi_hi / self.bin_phi))
        theta = self.theta
        phi = self.phi
        alive = self.alive
        found = []
        for bt in range(bt_lo, bt_hi + 1):
            for bp in range(bp_lo, bp_hi + 1):
                for i in self._buckets.get((bt, bp), ()):
                    if (
                        alive[i]
                        and theta_lo < theta[i] <= theta_hi
                        and phi_lo <= phi[i] <= phi_hi
                    ):
                        found.append(i)
        return found


def organize_polylines(
    theta: np.ndarray,
    phi: np.ndarray,
    xyz: np.ndarray,
    u_theta: float,
    u_phi: float,
) -> list[np.ndarray]:
    """Organize points into polylines; returns index arrays (length >= 1).

    Parameters
    ----------
    theta, phi:
        Azimuthal and polar angles per point.
    xyz:
        Cartesian coordinates, used for the closest-point tie-break
        (``||p - p'||`` in Algorithm 1).
    u_theta, u_phi:
        Average angular sample steps from the sensor metadata.

    Returns
    -------
    list of index arrays, one per polyline, each ordered left (small theta)
    to right.  Single-point lines are included; the caller treats them as
    outliers.
    """
    theta = np.asarray(theta, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)
    xyz = np.asarray(xyz, dtype=np.float64)
    if u_theta <= 0 or u_phi <= 0:
        raise ValueError("angular steps must be positive")
    n = len(theta)
    if n == 0:
        return []
    index = _AngularIndex(theta, phi, u_theta, u_phi)
    polylines: list[np.ndarray] = []

    def extend(end: int, phi_lo: float, phi_hi: float, direction: int) -> int | None:
        """Best next point right (direction=+1) or left (-1) of ``end``."""
        t_end = theta[end]
        if direction > 0:
            cands = index.candidates(t_end, t_end + 2.0 * u_theta, phi_lo, phi_hi)
        else:
            cands = index.candidates(t_end - 2.0 * u_theta, t_end, phi_lo, phi_hi)
            cands = [c for c in cands if theta[c] < t_end]
        if not cands:
            return None
        deltas = xyz[cands] - xyz[end]
        return cands[int(np.argmin(np.einsum("ij,ij->i", deltas, deltas)))]

    for seed in range(n):
        if not index.alive[seed]:
            continue
        index.kill(seed)
        line = deque([seed])
        phi_lo = phi[seed] - u_phi
        phi_hi = phi[seed] + u_phi
        # Extend to the right...
        current = seed
        while True:
            nxt = extend(current, phi_lo, phi_hi, +1)
            if nxt is None:
                break
            index.kill(nxt)
            line.append(nxt)
            current = nxt
        # ...then to the left (paper: both routines are symmetric).
        current = seed
        while True:
            nxt = extend(current, phi_lo, phi_hi, -1)
            if nxt is None:
                break
            index.kill(nxt)
            line.appendleft(nxt)
            current = nxt
        polylines.append(np.fromiter(line, dtype=np.int64, count=len(line)))
    return polylines
