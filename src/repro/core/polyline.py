"""Sparse point organization into polylines (paper Algorithm 1).

Sparse points are organized into roughly horizontal polylines in the
(theta, phi) plane: a polyline starts at a seed point and is extended to
the right and to the left by repeatedly picking, among points whose polar
angle stays within ``+- u_phi`` of the seed and whose azimuthal angle is
within ``2 * u_theta`` of the current end, the one closest in 3D.

Points that never join a line of length >= 2 are the *outliers* handed to
the outlier compressor.

Two implementations produce identical output:

- :func:`organize_polylines` — the production kernel.  Points are sorted
  by theta once and grouped into polar bands of width ``u_phi``; a line's
  candidate window is then a contiguous run of each band's theta-sorted
  position list, tracked by monotone pointers as the walk advances, with
  an alive bitmask for claimed points.  The common single-candidate step
  needs no distance computation at all; multi-candidate blocks fall back
  to the same vectorized squared-distance argmin the oracle uses.
- :func:`organize_polylines_py` — the original per-point loop over a
  bucketed angular index, kept as the byte-identity oracle for tests and
  the perf-regression benchmarks.

Ties in the closest-point argmin are broken exactly like the oracle's
candidate enumeration order (theta bucket, phi bucket, original index),
so both functions return the same polylines on every input, including
duplicate ``(theta, phi)`` points.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from collections import deque

import numpy as np

__all__ = ["organize_polylines", "organize_polylines_py"]


def _validate(theta: np.ndarray, u_theta: float, u_phi: float) -> None:
    if u_theta <= 0 or u_phi <= 0:
        raise ValueError("angular steps must be positive")


def organize_polylines(
    theta: np.ndarray,
    phi: np.ndarray,
    xyz: np.ndarray,
    u_theta: float,
    u_phi: float,
) -> list[np.ndarray]:
    """Organize points into polylines; returns index arrays (length >= 1).

    Parameters
    ----------
    theta, phi:
        Azimuthal and polar angles per point.
    xyz:
        Cartesian coordinates, used for the closest-point tie-break
        (``||p - p'||`` in Algorithm 1).
    u_theta, u_phi:
        Average angular sample steps from the sensor metadata.

    Returns
    -------
    list of index arrays, one per polyline, each ordered left (small theta)
    to right.  Single-point lines are included; the caller treats them as
    outliers.
    """
    theta = np.asarray(theta, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)
    xyz = np.asarray(xyz, dtype=np.float64)
    _validate(theta, u_theta, u_phi)
    n = len(theta)
    if n == 0:
        return []

    # Theta-sorted views: every candidate window is a contiguous run per
    # polar band, so the walk only ever advances pointers.
    order = np.argsort(theta, kind="stable")
    theta_s = theta[order]
    phi_s = phi[order]
    xyz_s = xyz[order]
    pos_of = np.empty(n, dtype=np.int64)
    pos_of[order] = np.arange(n)

    # Tie-break rank reproducing the oracle's candidate enumeration order:
    # it scans theta buckets, then phi buckets, then insertion (original
    # index) order, and argmin keeps the first minimum.
    bt = np.floor(theta / (2.0 * u_theta)).astype(np.int64)
    bp = np.floor(phi / (2.0 * u_phi)).astype(np.int64)
    rank = np.empty(n, dtype=np.int64)
    rank[np.lexsort((np.arange(n), bp, bt))] = np.arange(n)
    rank_l = rank[order].tolist()

    # Polar bands of width u_phi: a line's +-u_phi window around its seed
    # covers at most three consecutive bands, each holding a theta-sorted
    # list of sorted positions.  Built with one lexsort, converted to
    # Python lists once so the walk below runs without per-step numpy
    # call overhead (candidate runs are typically 1-3 points).
    band_s = np.floor(phi_s / u_phi).astype(np.int64)
    grouped = np.lexsort((np.arange(n), band_s))
    grouped_band = band_s[grouped]
    starts = np.concatenate([[0], np.flatnonzero(np.diff(grouped_band)) + 1])
    ends = np.concatenate([starts[1:], [n]])
    band_members: dict[int, tuple[list[int], list[float]]] = {}
    for s, e in zip(starts.tolist(), ends.tolist()):
        members = grouped[s:e]
        band_members[int(grouped_band[s])] = (
            members.tolist(),
            theta_s[members].tolist(),
        )

    theta_l = theta_s.tolist()
    phi_l = phi_s.tolist()
    pos_l = pos_of.tolist()
    xyz_l = xyz_s.tolist()
    alive = bytearray([1]) * n  # indexed by sorted position
    width = 2.0 * u_theta

    def pick(found: list[int], end: int) -> int:
        """Oracle-identical choice among multiple candidates.

        The oracle scores candidates with ``np.einsum("ij,ij->i")``, whose
        3-term reduction associates as ``(dx2 + dz2) + dy2`` (SIMD lane
        order); the scalar arithmetic here mirrors that association so
        near-tie selections round identically.  The byte-identity tests
        against :func:`organize_polylines_py` pin this on every scene.
        """
        ex, ey, ez = xyz_l[end]
        best = -1
        bd = 0.0
        brank = 0
        for q in found:
            px, py, pz = xyz_l[q]
            dx = px - ex
            dy = py - ey
            dz = pz - ez
            d2 = (dx * dx + dz * dz) + dy * dy
            if best < 0 or d2 < bd or (d2 == bd and rank_l[q] < brank):
                best = q
                bd = d2
                brank = rank_l[q]
        return best

    polylines: list[np.ndarray] = []
    for seed in range(n):
        sp = pos_l[seed]
        if not alive[sp]:
            continue
        alive[sp] = 0
        line: deque[int] = deque([sp])
        phi_c = phi_l[sp]
        phi_lo = phi_c - u_phi
        phi_hi = phi_c + u_phi
        bands = [
            band_members[b]
            for b in range(math.floor(phi_lo / u_phi), math.floor(phi_hi / u_phi) + 1)
            if b in band_members
        ]

        # Extend to the right: candidates have theta in (t_end, t_end + 2u].
        t_end = theta_l[sp]
        ptrs = []
        for _, thetas in bands:
            i0 = bisect_right(thetas, t_end)
            ptrs.append([i0, i0])
        current = sp
        while True:
            t_hi = t_end + width
            found: list[int] = []
            for (positions, thetas), ptr in zip(bands, ptrs):
                i0, i1 = ptr
                size = len(thetas)
                while i0 < size and thetas[i0] <= t_end:
                    i0 += 1
                while i1 < size and thetas[i1] <= t_hi:
                    i1 += 1
                ptr[0] = i0
                ptr[1] = i1
                for j in range(i0, i1):
                    q = positions[j]
                    if alive[q] and phi_lo <= phi_l[q] <= phi_hi:
                        found.append(q)
            if not found:
                break
            nxt = found[0] if len(found) == 1 else pick(found, current)
            alive[nxt] = 0
            line.append(nxt)
            current = nxt
            t_end = theta_l[nxt]

        # ...then to the left: theta in (t_end - 2u, t_end), walking down.
        t_end = theta_l[sp]
        ptrs = []
        for _, thetas in bands:
            j0 = bisect_right(thetas, t_end - width)
            j1 = bisect_left(thetas, t_end) - 1
            ptrs.append([j0, j1])
        current = sp
        while True:
            t_lo = t_end - width
            found = []
            for (positions, thetas), ptr in zip(bands, ptrs):
                j0, j1 = ptr
                while j1 >= 0 and thetas[j1] >= t_end:
                    j1 -= 1
                while j0 > 0 and thetas[j0 - 1] > t_lo:
                    j0 -= 1
                ptr[0] = j0
                ptr[1] = j1
                for j in range(j0, j1 + 1):
                    q = positions[j]
                    if alive[q] and phi_lo <= phi_l[q] <= phi_hi:
                        found.append(q)
            if not found:
                break
            nxt = found[0] if len(found) == 1 else pick(found, current)
            alive[nxt] = 0
            line.appendleft(nxt)
            current = nxt
            t_end = theta_l[nxt]

        polylines.append(order[np.fromiter(line, dtype=np.int64, count=len(line))])
    return polylines


class _AngularIndex:
    """Bucketed index over (theta, phi) with lazy deletion (oracle only)."""

    def __init__(self, theta: np.ndarray, phi: np.ndarray, u_theta: float, u_phi: float):
        self.theta = theta
        self.phi = phi
        self.bin_theta = 2.0 * u_theta
        self.bin_phi = 2.0 * u_phi
        bt = np.floor(theta / self.bin_theta).astype(np.int64)
        bp = np.floor(phi / self.bin_phi).astype(np.int64)
        self._bt = bt
        self._bp = bp
        self.alive = np.ones(len(theta), dtype=bool)
        self._buckets: dict[tuple[int, int], list[int]] = {}
        for i in range(len(theta)):
            self._buckets.setdefault((int(bt[i]), int(bp[i])), []).append(i)

    def kill(self, index: int) -> None:
        self.alive[index] = False

    def candidates(
        self,
        theta_lo: float,
        theta_hi: float,
        phi_lo: float,
        phi_hi: float,
    ) -> list[int]:
        """Alive points with theta in (theta_lo, theta_hi] and phi in range."""
        bt_lo = int(np.floor(theta_lo / self.bin_theta))
        bt_hi = int(np.floor(theta_hi / self.bin_theta))
        bp_lo = int(np.floor(phi_lo / self.bin_phi))
        bp_hi = int(np.floor(phi_hi / self.bin_phi))
        theta = self.theta
        phi = self.phi
        alive = self.alive
        found = []
        for bt in range(bt_lo, bt_hi + 1):
            for bp in range(bp_lo, bp_hi + 1):
                for i in self._buckets.get((bt, bp), ()):
                    if (
                        alive[i]
                        and theta_lo < theta[i] <= theta_hi
                        and phi_lo <= phi[i] <= phi_hi
                    ):
                        found.append(i)
        return found


def organize_polylines_py(
    theta: np.ndarray,
    phi: np.ndarray,
    xyz: np.ndarray,
    u_theta: float,
    u_phi: float,
) -> list[np.ndarray]:
    """Reference per-point loop implementation (the byte-identity oracle).

    Same contract as :func:`organize_polylines`; kept for the kernel
    regression tests and the perf benchmarks that assert the vectorized
    version's speedup.
    """
    theta = np.asarray(theta, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)
    xyz = np.asarray(xyz, dtype=np.float64)
    _validate(theta, u_theta, u_phi)
    n = len(theta)
    if n == 0:
        return []
    index = _AngularIndex(theta, phi, u_theta, u_phi)
    polylines: list[np.ndarray] = []

    def extend(end: int, phi_lo: float, phi_hi: float, direction: int) -> int | None:
        """Best next point right (direction=+1) or left (-1) of ``end``."""
        t_end = theta[end]
        if direction > 0:
            cands = index.candidates(t_end, t_end + 2.0 * u_theta, phi_lo, phi_hi)
        else:
            cands = index.candidates(t_end - 2.0 * u_theta, t_end, phi_lo, phi_hi)
            cands = [c for c in cands if theta[c] < t_end]
        if not cands:
            return None
        deltas = xyz[cands] - xyz[end]
        return cands[int(np.argmin(np.einsum("ij,ij->i", deltas, deltas)))]

    for seed in range(n):
        if not index.alive[seed]:
            continue
        index.kill(seed)
        line = deque([seed])
        phi_lo = phi[seed] - u_phi
        phi_hi = phi[seed] + u_phi
        # Extend to the right...
        current = seed
        while True:
            nxt = extend(current, phi_lo, phi_hi, +1)
            if nxt is None:
                break
            index.kill(nxt)
            line.append(nxt)
            current = nxt
        # ...then to the left (paper: both routines are symmetric).
        current = seed
        while True:
            nxt = extend(current, phi_lo, phi_hi, -1)
            if nxt is None:
                break
            index.kill(nxt)
            line.appendleft(nxt)
            current = nxt
        polylines.append(np.fromiter(line, dtype=np.int64, count=len(line)))
    return polylines
