"""End-to-end DBGC compression and decompression (paper Section 3).

:class:`DBGCCompressor` chains the six client-side components of Figure 2:
density-based clustering (DEN), octree compression of the dense points
(OCT), coordinate conversion (COR), point organization (ORG), coordinate
compression of the sparse points (SPA), and outlier compression (OUT).
:class:`DBGCDecompressor` reverses the three streams and reassembles the
cloud; the container header makes it self-contained.

The decompressed point order is canonical — dense points in octree Morton
order, then each group's polyline points, then the outliers — and
:attr:`CompressionResult.mapping` gives the original-index -> decoded-index
permutation, recomputable at compression time without costing stream bits.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro import observability as obs
from repro.core.attributes import (
    DEFAULT_ATTRIBUTE_STEP,
    decode_attributes,
    encode_attributes,
)
from repro.core.clustering import cluster_approx, cluster_exact, split_by_fraction
from repro.core.container import pack_container, unpack_container
from repro.core.grouping import split_into_groups
from repro.core.outlier import decode_outliers, encode_outliers
from repro.core.params import DBGCParams
from repro.core.sparse_codec import decode_sparse_group, encode_sparse_group
from repro.datasets.sensors import SensorModel
from repro.geometry.points import PointCloud
from repro.octree.codec import OctreeCodec

__all__ = ["CompressionResult", "DBGCCompressor", "DBGCDecompressor"]

# One stage pool per process, shared by every compressor (and, under
# ParallelFrameCompressor, by every frame a worker process handles), so
# intra-frame parallelism never multiplies thread counts per compressor.
_STAGE_POOL: ThreadPoolExecutor | None = None
_STAGE_POOL_WORKERS = 0
_STAGE_POOL_LOCK = threading.Lock()


def _stage_pool(workers: int) -> ThreadPoolExecutor:
    """The shared intra-frame stage pool, grown (never shrunk) on demand."""
    global _STAGE_POOL, _STAGE_POOL_WORKERS
    with _STAGE_POOL_LOCK:
        if _STAGE_POOL is None or _STAGE_POOL_WORKERS < workers:
            if _STAGE_POOL is not None:
                _STAGE_POOL.shutdown(wait=False)
            _STAGE_POOL = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="dbgc-stage"
            )
            _STAGE_POOL_WORKERS = workers
        return _STAGE_POOL


@dataclass
class CompressionResult:
    """Everything the evaluation needs about one compression run."""

    payload: bytes
    n_points: int
    n_dense: int
    n_sparse: int
    n_outliers: int
    #: Original-index -> decoded-index permutation.
    mapping: np.ndarray
    #: Stage wall-clock seconds: den, oct, cor, org, spa, out (Figure 13).
    #: Derived from the observability span tree (see docs/OBSERVABILITY.md).
    timings: dict[str, float] = field(default_factory=dict)
    #: Component byte sizes: dense, sparse, outlier, plus per-stream detail.
    stream_sizes: dict[str, int] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.payload)

    def compression_ratio(self, bits_per_coordinate: int = 32) -> float:
        """Raw size / |B| with the paper's 12-bytes-per-point accounting."""
        raw = self.n_points * 3 * bits_per_coordinate / 8
        return raw / len(self.payload) if self.payload else float("inf")


class DBGCCompressor:
    """The DBGC client-side compression scheme.

    Parameters
    ----------
    params:
        Scheme parameters (defaults are the paper's).
    sensor:
        Sensor whose metadata supplies the angular steps ``u_theta`` and
        ``u_phi`` (Section 3.3).  Defaults to the benchmark HDL-64E model.
    u_theta, u_phi:
        Explicit angular steps; override the sensor metadata when given.
    """

    def __init__(
        self,
        params: DBGCParams | None = None,
        sensor: SensorModel | None = None,
        u_theta: float | None = None,
        u_phi: float | None = None,
    ) -> None:
        self.params = params if params is not None else DBGCParams()
        if sensor is None:
            sensor = SensorModel.benchmark_default()
        self.sensor = sensor
        self.u_theta = float(u_theta) if u_theta is not None else sensor.u_theta
        self.u_phi = float(u_phi) if u_phi is not None else sensor.u_phi

    # -- clustering ----------------------------------------------------------------

    @property
    def min_pts(self) -> int:
        """The clustering threshold, resolved against the sensor metadata."""
        return self.params.min_pts_for_sensor(self.u_theta, self.u_phi)

    def _classify(self, xyz: np.ndarray) -> np.ndarray:
        params = self.params
        if params.dense_fraction is not None:
            return split_by_fraction(xyz, params.dense_fraction)
        if params.clustering == "none":
            return np.zeros(len(xyz), dtype=bool)
        if params.clustering == "all-dense":
            return np.ones(len(xyz), dtype=bool)
        if params.clustering == "exact":
            return cluster_exact(xyz, params.eps, self.min_pts, params.leaf_side)
        return cluster_approx(xyz, params.eps, self.min_pts)

    # -- API -------------------------------------------------------------------------

    def compress(
        self,
        cloud: PointCloud,
        attributes: dict[str, np.ndarray] | None = None,
        attribute_steps: dict[str, float] | float = DEFAULT_ATTRIBUTE_STEP,
    ) -> bytes:
        """Compress a point cloud into the final bit sequence B.

        ``attributes`` optionally carries named per-point scalars (e.g.
        intensity) which are quantized by ``attribute_steps`` and appended
        to the stream in decoded point order.
        """
        return self.compress_detailed(cloud, attributes, attribute_steps).payload

    def compress_temporal(
        self,
        cloud: PointCloud,
        context,
        ego_delta=(0.0, 0.0, 0.0),
        attributes: dict[str, np.ndarray] | None = None,
        attribute_steps: dict[str, float] | float = DEFAULT_ATTRIBUTE_STEP,
    ) -> CompressionResult:
        """Compress one frame of a temporal stream against ``context``.

        ``context`` is a :class:`repro.core.temporal.TemporalContext`
        advanced across calls.  Frame ``i`` is an intra keyframe when
        ``i % keyframe_interval == 0`` (or whenever the context has no
        predictor state yet); other frames are format-v3 delta frames
        coded against the previous frame's decoded geometry.
        ``ego_delta`` is the sensor translation since the previous frame
        (meters); ``(0, 0, 0)`` disables motion compensation but stays
        correct.
        """
        from repro.core import temporal

        keyframe = (
            not context.has_state
            or context.frames_coded % self.params.keyframe_interval == 0
        )
        if keyframe:
            result = self.compress_detailed(cloud, attributes, attribute_steps)
            temporal.observe_intra(context, result.payload)
            return result
        return temporal.compress_delta(
            self, cloud, context, ego_delta, attributes, attribute_steps
        )

    def compress_detailed(
        self,
        cloud: PointCloud,
        attributes: dict[str, np.ndarray] | None = None,
        attribute_steps: dict[str, float] | float = DEFAULT_ATTRIBUTE_STEP,
    ) -> CompressionResult:
        """Compress and report sizes, timings and the point correspondence.

        Stage timings come from the observability span tree: inside an
        :func:`repro.observability.recording` block the spans join the
        process-global report; otherwise a thread-scoped recorder backs
        just this call.  ``timings``/``stream_sizes`` are the span-tree
        query results either way, so the Figure 13 breakdown and the
        ``--metrics`` report can never disagree.
        """
        params = self.params
        xyz = cloud.xyz
        n = len(xyz)
        sizes: dict[str, int] = {}

        with obs.ensure_recorder() as recorder, recorder.span("dbgc.compress") as root:
            recorder.count("compress.frames")
            recorder.count("compress.points_in", n)

            with recorder.span("dbgc.den"):
                dense_mask = self._classify(xyz)

            dense_idx = np.flatnonzero(dense_mask)
            sparse_idx = np.flatnonzero(~dense_mask)
            recorder.count("compress.points_dense", len(dense_idx))

            # Radial grouping of sparse points (Section 3.5, Point Grouping).
            radii = np.linalg.norm(xyz[sparse_idx], axis=1) if len(sparse_idx) else None
            groups = (
                split_into_groups(radii, params.effective_n_groups)
                if len(sparse_idx)
                else []
            )
            group_globals = [sparse_idx[g] for g in groups]

            # The dense octree, each radial sparse group, and the outlier
            # codec produce independent byte streams; the closures below run
            # either inline (serial) or on the shared stage pool.  Worker
            # threads attach to the compress root so the span tree keeps the
            # serial shape, and the payloads are byte-identical either way —
            # only the schedule changes.
            def encode_dense() -> tuple[bytes, np.ndarray | None]:
                with recorder.span("dbgc.oct"):
                    octree = OctreeCodec(params.leaf_side, backend=params.entropy_backend)
                    dense_payload = octree.encode(xyz[dense_idx])
                    octree_mapping = (
                        octree.mapping(xyz[dense_idx]) if len(dense_idx) else None
                    )
                return dense_payload, octree_mapping

            def encode_group(group_global: np.ndarray):
                return encode_sparse_group(
                    xyz[group_global], params, self.u_theta, self.u_phi
                )

            def encode_out(outlier_xyz: np.ndarray) -> tuple[bytes, np.ndarray]:
                with recorder.span("dbgc.out"):
                    return encode_outliers(outlier_xyz, params)

            parallel = params.intra_frame_workers > 1
            if parallel:
                pool = _stage_pool(
                    min(params.intra_frame_workers, 1 + max(1, len(group_globals)))
                )

                def staged(fn, *args):
                    def task():
                        with recorder.attach(root):
                            return fn(*args)

                    return pool.submit(task)

                dense_future = staged(encode_dense)
                group_futures = [staged(encode_group, gg) for gg in group_globals]
                dense_payload, octree_mapping = dense_future.result()
                encodings = [future.result() for future in group_futures]
            else:
                dense_payload, octree_mapping = encode_dense()
                encodings = [encode_group(gg) for gg in group_globals]

            mapping = np.empty(n, dtype=np.int64)
            if octree_mapping is not None:
                mapping[dense_idx] = octree_mapping
            sizes["dense"] = len(dense_payload)
            recorder.add_bytes("stream.dense", len(dense_payload))

            outlier_global = [
                gg[enc.outlier_indices]
                for gg, enc in zip(group_globals, encodings)
                if len(enc.outlier_indices)
            ]
            outliers = (
                np.concatenate(outlier_global)
                if outlier_global
                else np.empty(0, dtype=np.int64)
            )
            # Kick off the outlier stage before the mapping bookkeeping so
            # it overlaps with the scatter updates below.
            out_future = staged(encode_out, xyz[outliers]) if parallel else None

            group_payloads: list[bytes] = []
            offset = len(dense_idx)
            n_sparse_coded = 0
            for group_global, encoding in zip(group_globals, encodings):
                group_payloads.append(encoding.payload)
                for name, size in encoding.stream_sizes.items():
                    sizes[name] = sizes.get(name, 0) + size
                ordered_global = group_global[encoding.order]
                mapping[ordered_global] = offset + np.arange(len(ordered_global))
                offset += len(ordered_global)
                n_sparse_coded += len(ordered_global)
            sizes["sparse"] = sum(len(p) for p in group_payloads)
            recorder.add_bytes("stream.sparse", sizes["sparse"])
            recorder.count("compress.points_sparse", n_sparse_coded)

            outlier_payload, outlier_mapping = (
                out_future.result() if out_future is not None else encode_out(xyz[outliers])
            )
            if len(outliers):
                mapping[outliers] = offset + outlier_mapping
            sizes["outlier"] = len(outlier_payload)
            recorder.add_bytes("stream.outlier", len(outlier_payload))
            recorder.count("compress.points_outlier", len(outliers))

            attribute_payload = b""
            if attributes:
                with recorder.span("dbgc.attr"):
                    attribute_payload = encode_attributes(
                        attributes, mapping, attribute_steps, backend=params.entropy_backend
                    )
                sizes["attributes"] = len(attribute_payload)
                recorder.add_bytes("stream.attributes", len(attribute_payload))

            payload = pack_container(
                params,
                self.u_theta,
                self.u_phi,
                dense_payload,
                group_payloads,
                outlier_payload,
                attribute_payload,
            )
            recorder.count("compress.payload_bytes", len(payload))

        # The Figure 13 stage breakdown is a query over the span tree.
        timings = {
            "den": root.total("dbgc.den"),
            "oct": root.total("dbgc.oct"),
            "cor": root.total("sparse.cor"),
            "org": root.total("sparse.org"),
            "spa": root.total("sparse.spa"),
            "out": root.total("dbgc.out"),
        }
        recorder.observe("compress.seconds", root.duration)
        return CompressionResult(
            payload=payload,
            n_points=n,
            n_dense=len(dense_idx),
            n_sparse=n_sparse_coded,
            n_outliers=len(outliers),
            mapping=mapping,
            timings=timings,
            stream_sizes=sizes,
        )


class DBGCDecompressor:
    """The DBGC server-side decompression scheme (self-contained)."""

    def decompress(self, data: bytes) -> PointCloud:
        """Decompress B into the canonical-order point cloud."""
        cloud, _ = self.decompress_detailed(data)
        return cloud

    def decompress_with_attributes(
        self, data: bytes
    ) -> tuple[PointCloud, dict[str, np.ndarray]]:
        """Decompress geometry plus the attribute block (decoded order)."""
        cloud, _ = self.decompress_detailed(data)
        header, _, _, _, attribute_payload = unpack_container(data)
        return cloud, decode_attributes(attribute_payload, version=header.version)

    def decompress_detailed(self, data: bytes) -> tuple[PointCloud, dict[str, float]]:
        """Decompress and report per-component wall-clock times.

        Like :meth:`DBGCCompressor.compress_detailed`, the timings are a
        query over the observability span tree.
        """
        with obs.ensure_recorder() as recorder, recorder.span("dbgc.decompress") as root:
            recorder.count("decompress.frames")
            header, dense_payload, group_payloads, outlier_payload, _ = unpack_container(
                data
            )
            if header.is_delta:
                raise ValueError(
                    "cannot decompress a delta frame (format v3) standalone; "
                    "feed the stream through repro.core.temporal.TemporalDecoder"
                )
            params = header.to_params()
            version = header.version

            with recorder.span("dbgc.oct"):
                dense = OctreeCodec(params.leaf_side).decode(
                    dense_payload, version=version
                )

            with recorder.span("dbgc.spa"):
                chunks = [dense]
                for payload in group_payloads:
                    chunks.append(
                        decode_sparse_group(
                            payload, params, header.u_theta, header.u_phi,
                            version=version,
                        )
                    )

            with recorder.span("dbgc.out"):
                chunks.append(decode_outliers(outlier_payload, params, version=version))
            cloud = PointCloud(np.vstack(chunks))
            recorder.count("decompress.points_out", len(cloud))

        timings = {
            "oct": root.total("dbgc.oct"),
            "spa": root.total("dbgc.spa"),
            "out": root.total("dbgc.out"),
        }
        recorder.observe("decompress.seconds", root.duration)
        return cloud, timings
