"""Final bit-sequence layout (paper Section 3.7, Figure 8).

The container records the error bound, the coding flags, the frame's
entropy-backend tag and the sensor's angular steps, followed by the three
length-prefixed components: the octree stream for dense points, one
coordinate stream per radial group (each group carries its own ``r_max``
inside, Figure 8b), and the outlier stream.  The header makes the
decompressor fully self-contained.

Format version 2 adds the entropy-backend byte (the frame-level default;
every entropy-coded stream additionally carries its own tag byte, so the
header field is informational) and covers the version-2 stream layouts of
the sub-codecs — see docs/FORMAT.md.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.params import DBGCParams
from repro.entropy.backend import backend_for_tag, get_backend
from repro.entropy.varint import decode_uvarint, encode_uvarint

__all__ = ["ContainerHeader", "pack_container", "unpack_container"]

_MAGIC = b"DBGC"
_VERSION = 2
_FIXED = struct.Struct("<4d")  # q_xyz, u_theta, u_phi, th_r

_FLAG_SPHERICAL = 1
_FLAG_RADIAL = 2
_FLAG_STRICT = 4


@dataclass(frozen=True)
class ContainerHeader:
    """Decoded container metadata."""

    q_xyz: float
    u_theta: float
    u_phi: float
    th_r: float
    spherical_conversion: bool
    radial_reference: bool
    strict_cartesian: bool
    #: Frame-level default entropy backend (streams carry their own tags).
    entropy_backend: str = "adaptive-arith"

    def to_params(self, base: DBGCParams | None = None) -> DBGCParams:
        """Reconstruct the params fields the decompressor needs."""
        base = base if base is not None else DBGCParams()
        return base.with_updates(
            q_xyz=self.q_xyz,
            th_r=self.th_r,
            spherical_conversion=self.spherical_conversion,
            radial_reference=self.radial_reference,
            strict_cartesian=self.strict_cartesian,
            entropy_backend=self.entropy_backend,
        )


def pack_container(
    params: DBGCParams,
    u_theta: float,
    u_phi: float,
    dense_payload: bytes,
    group_payloads: list[bytes],
    outlier_payload: bytes,
    attribute_payload: bytes = b"",
) -> bytes:
    """Assemble the final bit sequence B.

    ``attribute_payload`` is an optional trailing block carrying per-point
    attributes (e.g. intensity) in decoded point order.
    """
    out = bytearray(_MAGIC)
    out.append(_VERSION)
    flags = 0
    if params.spherical_conversion:
        flags |= _FLAG_SPHERICAL
    if params.radial_reference:
        flags |= _FLAG_RADIAL
    if params.strict_cartesian:
        flags |= _FLAG_STRICT
    out.append(flags)
    out.append(get_backend(params.entropy_backend).tag)
    out += _FIXED.pack(params.q_xyz, u_theta, u_phi, params.th_r)
    encode_uvarint(len(dense_payload), out)
    out += dense_payload
    encode_uvarint(len(group_payloads), out)
    for payload in group_payloads:
        encode_uvarint(len(payload), out)
        out += payload
    encode_uvarint(len(outlier_payload), out)
    out += outlier_payload
    encode_uvarint(len(attribute_payload), out)
    out += attribute_payload
    return bytes(out)


def unpack_container(
    data: bytes,
) -> tuple[ContainerHeader, bytes, list[bytes], bytes, bytes]:
    """Split B back into (header, dense, groups, outlier, attributes)."""
    if data[:4] != _MAGIC:
        raise ValueError("not a DBGC stream (bad magic)")
    if data[4] != _VERSION:
        raise ValueError(f"unsupported DBGC version {data[4]}")
    flags = data[5]
    backend = backend_for_tag(data[6])
    q_xyz, u_theta, u_phi, th_r = _FIXED.unpack_from(data, 7)
    pos = 7 + _FIXED.size
    header = ContainerHeader(
        q_xyz=q_xyz,
        u_theta=u_theta,
        u_phi=u_phi,
        th_r=th_r,
        spherical_conversion=bool(flags & _FLAG_SPHERICAL),
        radial_reference=bool(flags & _FLAG_RADIAL),
        strict_cartesian=bool(flags & _FLAG_STRICT),
        entropy_backend=backend.name,
    )
    size, pos = decode_uvarint(data, pos)
    dense = data[pos : pos + size]
    pos += size
    n_groups, pos = decode_uvarint(data, pos)
    groups = []
    for _ in range(n_groups):
        size, pos = decode_uvarint(data, pos)
        groups.append(data[pos : pos + size])
        pos += size
    size, pos = decode_uvarint(data, pos)
    outlier = data[pos : pos + size]
    pos += size
    size, pos = decode_uvarint(data, pos)
    attributes = data[pos : pos + size]
    return header, dense, groups, outlier, attributes
