"""Final bit-sequence layout (paper Section 3.7, Figure 8).

The container records the error bound, the coding flags, the frame's
entropy-backend tag and the sensor's angular steps, followed by the three
length-prefixed components: the octree stream for dense points, one
coordinate stream per radial group (each group carries its own ``r_max``
inside, Figure 8b), and the outlier stream.  The header makes the
decompressor fully self-contained.

Format version 2 adds the entropy-backend byte (the frame-level default;
every entropy-coded stream additionally carries its own tag byte, so the
header field is informational) and covers the version-2 stream layouts of
the sub-codecs — see docs/FORMAT.md.

Format version 3 marks a *delta frame* (inter-frame temporal coding,
:mod:`repro.core.temporal`): the version byte doubles as the frame-type
flag (1/2 = intra, 3 = delta), and the header gains a predictor-state
fingerprint (CRC-32 of the previous decoded frame) plus the ego-motion
translation between the predictor frame and this one.  Keyframes are
plain version-2 containers, byte-identical to independent coding.

Version-1 and version-2 payloads remain decodable: :func:`unpack_container`
dispatches on the version byte and reports it in the header so the
sub-codecs can select their legacy stream layouts.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.params import DBGCParams
from repro.entropy.backend import backend_for_tag, get_backend
from repro.entropy.varint import decode_uvarint, encode_uvarint

__all__ = [
    "ContainerHeader",
    "pack_container",
    "pack_container_v3",
    "unpack_container",
    "container_version",
]

_MAGIC = b"DBGC"
_VERSION = 2
_VERSION_DELTA = 3
_FIXED = struct.Struct("<4d")  # q_xyz, u_theta, u_phi, th_r
#: v3 extension: u32 predictor fingerprint + 3 x f64 ego-motion delta.
_V3_EXT = struct.Struct("<I3d")

_FLAG_SPHERICAL = 1
_FLAG_RADIAL = 2
_FLAG_STRICT = 4


@dataclass(frozen=True)
class ContainerHeader:
    """Decoded container metadata."""

    q_xyz: float
    u_theta: float
    u_phi: float
    th_r: float
    spherical_conversion: bool
    radial_reference: bool
    strict_cartesian: bool
    #: Frame-level default entropy backend (streams carry their own tags).
    entropy_backend: str = "adaptive-arith"
    #: Container format version (1, 2 = intra frame; 3 = delta frame).
    version: int = 2
    #: CRC-32 of the predictor state a delta frame was coded against
    #: (v3 only; 0 on intra frames).
    predictor_fingerprint: int = 0
    #: Sensor translation (current - predictor frame), meters (v3 only).
    ego_delta: tuple[float, float, float] = (0.0, 0.0, 0.0)

    @property
    def is_delta(self) -> bool:
        return self.version == _VERSION_DELTA

    def to_params(self, base: DBGCParams | None = None) -> DBGCParams:
        """Reconstruct the params fields the decompressor needs."""
        base = base if base is not None else DBGCParams()
        return base.with_updates(
            q_xyz=self.q_xyz,
            th_r=self.th_r,
            spherical_conversion=self.spherical_conversion,
            radial_reference=self.radial_reference,
            strict_cartesian=self.strict_cartesian,
            entropy_backend=self.entropy_backend,
        )


def container_version(data: bytes) -> int:
    """The format version byte of a DBGC payload (frame-type discriminator)."""
    if data[:4] != _MAGIC or len(data) < 5:
        raise ValueError("not a DBGC stream (bad magic)")
    return data[4]


def _flags_byte(params: DBGCParams) -> int:
    flags = 0
    if params.spherical_conversion:
        flags |= _FLAG_SPHERICAL
    if params.radial_reference:
        flags |= _FLAG_RADIAL
    if params.strict_cartesian:
        flags |= _FLAG_STRICT
    return flags


def _pack_sections(
    out: bytearray,
    dense_payload: bytes,
    group_payloads: list[bytes],
    outlier_payload: bytes,
    attribute_payload: bytes,
) -> bytes:
    encode_uvarint(len(dense_payload), out)
    out += dense_payload
    encode_uvarint(len(group_payloads), out)
    for payload in group_payloads:
        encode_uvarint(len(payload), out)
        out += payload
    encode_uvarint(len(outlier_payload), out)
    out += outlier_payload
    encode_uvarint(len(attribute_payload), out)
    out += attribute_payload
    return bytes(out)


def pack_container(
    params: DBGCParams,
    u_theta: float,
    u_phi: float,
    dense_payload: bytes,
    group_payloads: list[bytes],
    outlier_payload: bytes,
    attribute_payload: bytes = b"",
) -> bytes:
    """Assemble the final bit sequence B (an intra frame / keyframe).

    ``attribute_payload`` is an optional trailing block carrying per-point
    attributes (e.g. intensity) in decoded point order.
    """
    out = bytearray(_MAGIC)
    out.append(_VERSION)
    out.append(_flags_byte(params))
    out.append(get_backend(params.entropy_backend).tag)
    out += _FIXED.pack(params.q_xyz, u_theta, u_phi, params.th_r)
    return _pack_sections(
        out, dense_payload, group_payloads, outlier_payload, attribute_payload
    )


def pack_container_v3(
    params: DBGCParams,
    u_theta: float,
    u_phi: float,
    predictor_fingerprint: int,
    ego_delta: tuple[float, float, float],
    dense_payload: bytes,
    group_payloads: list[bytes],
    outlier_payload: bytes,
    attribute_payload: bytes = b"",
) -> bytes:
    """Assemble a delta frame (format v3).

    The dense payload and every group payload must already carry their
    leading intra/delta mode byte (see :mod:`repro.core.temporal`); the
    outlier and attribute sections are always intra-coded.
    """
    out = bytearray(_MAGIC)
    out.append(_VERSION_DELTA)
    out.append(_flags_byte(params))
    out.append(get_backend(params.entropy_backend).tag)
    out += _FIXED.pack(params.q_xyz, u_theta, u_phi, params.th_r)
    dx, dy, dz = ego_delta
    out += _V3_EXT.pack(predictor_fingerprint & 0xFFFFFFFF, dx, dy, dz)
    return _pack_sections(
        out, dense_payload, group_payloads, outlier_payload, attribute_payload
    )


def _take(data: bytes, pos: int, size: int) -> tuple[bytes, int]:
    """Bounds-checked slice: a short container raises instead of truncating."""
    if size < 0 or pos + size > len(data):
        raise ValueError("truncated DBGC container")
    return data[pos : pos + size], pos + size


def unpack_container(
    data: bytes,
) -> tuple[ContainerHeader, bytes, list[bytes], bytes, bytes]:
    """Split B back into (header, dense, groups, outlier, attributes).

    Every length field is bounds-checked against the payload, so a
    truncated or corrupt container raises ``ValueError("truncated DBGC
    container")`` instead of handing short slices to the sub-decoders.
    """
    if data[:4] != _MAGIC:
        raise ValueError("not a DBGC stream (bad magic)")
    if len(data) < 6:
        raise ValueError("truncated DBGC container")
    version = data[4]
    if version not in (1, _VERSION, _VERSION_DELTA):
        raise ValueError(f"unsupported DBGC version {version}")
    flags = data[5]
    if version == 1:
        # v1 has no backend byte: flags at 5, fixed header at 6.
        backend_name = "adaptive-arith"
        pos = 6
    else:
        if len(data) < 7:
            raise ValueError("truncated DBGC container")
        backend_name = backend_for_tag(data[6]).name
        pos = 7
    if pos + _FIXED.size > len(data):
        raise ValueError("truncated DBGC container")
    q_xyz, u_theta, u_phi, th_r = _FIXED.unpack_from(data, pos)
    pos += _FIXED.size
    fingerprint = 0
    ego_delta = (0.0, 0.0, 0.0)
    if version == _VERSION_DELTA:
        if pos + _V3_EXT.size > len(data):
            raise ValueError("truncated DBGC container")
        fingerprint, dx, dy, dz = _V3_EXT.unpack_from(data, pos)
        ego_delta = (dx, dy, dz)
        pos += _V3_EXT.size
    header = ContainerHeader(
        q_xyz=q_xyz,
        u_theta=u_theta,
        u_phi=u_phi,
        th_r=th_r,
        spherical_conversion=bool(flags & _FLAG_SPHERICAL),
        radial_reference=bool(flags & _FLAG_RADIAL),
        strict_cartesian=bool(flags & _FLAG_STRICT),
        entropy_backend=backend_name,
        version=version,
        predictor_fingerprint=fingerprint,
        ego_delta=ego_delta,
    )
    try:
        size, pos = decode_uvarint(data, pos)
        dense, pos = _take(data, pos, size)
        n_groups, pos = decode_uvarint(data, pos)
        groups = []
        for _ in range(n_groups):
            size, pos = decode_uvarint(data, pos)
            group, pos = _take(data, pos, size)
            groups.append(group)
        size, pos = decode_uvarint(data, pos)
        outlier, pos = _take(data, pos, size)
        size, pos = decode_uvarint(data, pos)
        attributes, pos = _take(data, pos, size)
    except (IndexError, ValueError):
        # A length varint ran off the end of the buffer (or was malformed),
        # or a section body was short — one uniform error for callers.
        raise ValueError("truncated DBGC container") from None
    return header, dense, groups, outlier, attributes
