"""Radial point grouping (paper Section 3.5, "Point Grouping").

The angular quantizers are sized for the farthest point of a group
(``q_theta = q_xyz / r_max``), so points near the sensor are stored with
needless angular precision.  Splitting the sparse points into radial groups
and compressing each with its own ``r_max`` recovers that slack; the paper
finds 3 groups sufficient.
"""

from __future__ import annotations

import numpy as np

__all__ = ["split_into_groups"]


def split_into_groups(radii: np.ndarray, n_groups: int) -> list[np.ndarray]:
    """Split point indices into ``n_groups`` groups even in radial distance.

    The radial range is cut into equal-width intervals ("evenly by the
    radial distance").  Equal widths — rather than equal counts — matter
    for the radial-optimized delta encoding: each group still spans real
    foreground/background discontinuities, which is exactly what the
    reference-point machinery of Step 8 exploits.  Within each group the
    original index order is preserved; empty groups are dropped.
    """
    radii = np.asarray(radii, dtype=np.float64)
    if n_groups < 1:
        raise ValueError(f"n_groups must be >= 1, got {n_groups}")
    n = len(radii)
    if n == 0:
        return []
    if n_groups == 1:
        return [np.arange(n, dtype=np.int64)]
    edges = np.linspace(radii.min(), radii.max(), n_groups + 1)[1:-1]
    assignment = np.searchsorted(edges, radii, side="right")
    groups = [
        np.flatnonzero(assignment == g).astype(np.int64) for g in range(n_groups)
    ]
    return [g for g in groups if len(g)]
