"""Radial-distance-optimized delta encoding (paper Definition 3.3, Step 8).

For every sparse point the encoder picks a *reference point* whose radial
distance is likely close, and stores ``nabla_r = r - r_ref``:

- the previous point on the same polyline (the *bottom-left* point) when the
  local scene is flat, which the decoder can detect itself; or
- the best of four spatial neighbours (bottom-left, upper-right,
  upper-middle, upper-left) when the radial jump exceeds ``TH_r``; only this
  choice needs a recorded symbol (stream ``L_ref``).

Upper neighbours come from the *consensus reference polyline* ``l*``
(Algorithm 2), an overlay of the preceding polylines whose polar angle is
within ``TH_phi`` of the current line.

Everything here operates on quantized integers: the decoder reruns exactly
the same branch logic on exactly the same values, so no branch bits are
spent outside ``L_ref``.

Each codec ships two implementations with identical output: the production
kernels (:func:`encode_radial`, :func:`decode_radial`,
:func:`encode_radial_plain`, :func:`decode_radial_plain`) batch the
per-point neighbour searches and delta arithmetic with numpy, while the
original per-point loops are retained with a ``_py`` suffix as the
byte-identity oracles for tests and perf benchmarks.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

import numpy as np

__all__ = [
    "build_consensus",
    "encode_radial",
    "decode_radial",
    "encode_radial_plain",
    "decode_radial_plain",
    "encode_radial_py",
    "decode_radial_py",
    "encode_radial_plain_py",
    "decode_radial_plain_py",
]

# L_ref symbols (paper Step 8): bottom-left, upper-right, upper-middle, upper-left.
SYM_BOTTOM_LEFT = 0
SYM_UPPER_RIGHT = 1
SYM_UPPER_MIDDLE = 2
SYM_UPPER_LEFT = 3

_BIG = np.iinfo(np.int64).max


def build_consensus(
    ref_lines: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[list[int], list[int]]:
    """Algorithm 2: overlay reference polylines into one consensus line.

    ``ref_lines`` holds ``(theta_ints, r_ints)`` pairs in ``<PL>`` order.
    Returns the consensus as parallel theta / r lists sorted by theta.
    """
    thetas: list[int] = []
    rs: list[int] = []
    for line_theta, line_r in ref_lines:
        lt = line_theta.tolist()
        lr = line_r.tolist()
        if not thetas or thetas[-1] < lt[0]:
            thetas.extend(lt)
            rs.extend(lr)
            continue
        # Replace the span of l* overlapped by this line with the line itself
        # (newer lines are vertically closer to the target polyline).  The
        # span is inclusive of equal azimuths so no stale duplicates remain.
        id_left = bisect_left(thetas, lt[0])
        id_right = bisect_right(thetas, lt[-1]) - 1
        if id_left <= id_right:
            thetas[id_left : id_right + 1] = lt
            rs[id_left : id_right + 1] = lr
        else:
            thetas[id_left:id_left] = lt
            rs[id_left:id_left] = lr
    return thetas, rs


def _reference_sets(
    line_phis: list[int], th_phi: int
) -> list[range]:
    """Per-line index ranges of reference polylines (preceding, phi-close)."""
    sets = []
    start = 0
    for i, phi in enumerate(line_phis):
        while start < i and line_phis[i] - line_phis[start] > th_phi:
            start += 1
        sets.append(range(start, i))
    return sets


class _ConsensusWindow:
    """Incrementally maintained Algorithm 2 consensus over a sliding window.

    :func:`_reference_sets` yields contiguous windows ``[start, i)`` whose
    bounds only move forward, and the overlay has two properties that make
    incremental maintenance exact: adding a line is the same splice
    :func:`build_consensus` performs, and removing the *oldest* line
    cannot resurrect anything (a point only ever dies to a **later**
    line's span, so the dropped line's span never shadowed a survivor).
    Maintaining the consensus across lines this way replaces the
    per-polyline from-scratch rebuild — the dominant cost of Algorithm 2 —
    with one splice and at most one filter pass per step.
    """

    __slots__ = ("thetas", "rs", "ids")

    def __init__(self) -> None:
        self.thetas = np.empty(0, dtype=np.int64)
        self.rs = np.empty(0, dtype=np.int64)
        self.ids = np.empty(0, dtype=np.int64)

    def add(self, line_id: int, lt: np.ndarray, lr: np.ndarray) -> None:
        """Overlay one line (same splice semantics as build_consensus)."""
        thetas = self.thetas
        tag = np.full(lt.size, line_id, dtype=np.int64)
        if thetas.size and thetas[-1] >= lt[0]:
            i0 = int(np.searchsorted(thetas, lt[0], side="left"))
            i1 = int(np.searchsorted(thetas, lt[-1], side="right"))
            self.thetas = np.concatenate([thetas[:i0], lt, thetas[i1:]])
            self.rs = np.concatenate([self.rs[:i0], lr, self.rs[i1:]])
            self.ids = np.concatenate([self.ids[:i0], tag, self.ids[i1:]])
        else:
            self.thetas = np.concatenate([thetas, lt])
            self.rs = np.concatenate([self.rs, lr])
            self.ids = np.concatenate([self.ids, tag])

    def drop(self, line_id: int) -> None:
        """Remove the (oldest) line's surviving points."""
        keep = self.ids != line_id
        if not keep.all():
            self.thetas = self.thetas[keep]
            self.rs = self.rs[keep]
            self.ids = self.ids[keep]


def _tail_neighbors(
    ct: np.ndarray, cr: np.ndarray, t_tail: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batched consensus lookup: (r_ul, r_um, r_ur, has_both, has_um).

    Vectorized form of :func:`_upper_neighbors` over every tail azimuth of
    a polyline at once.  Values at positions where the corresponding
    ``has_*`` mask is False are arbitrary and must not be read.
    """
    m = t_tail.size
    if ct.size == 0:
        zeros = np.zeros(m, dtype=np.int64)
        none = np.zeros(m, dtype=bool)
        return zeros, zeros, zeros, none, none
    i_ul = np.searchsorted(ct, t_tail, side="left") - 1
    i_ur = np.searchsorted(ct, t_tail, side="right")
    has_ul = i_ul >= 0
    has_ur = i_ur < ct.size
    has_um = has_ul & (i_ul + 1 < i_ur)
    r_ul = cr[np.maximum(i_ul, 0)]
    r_ur = cr[np.minimum(i_ur, ct.size - 1)]
    r_um = cr[np.minimum(np.maximum(i_ul, 0) + 1, ct.size - 1)]
    return r_ul, r_um, r_ur, has_ul & has_ur, has_um


def encode_radial(
    lines_theta: list[np.ndarray],
    lines_r: list[np.ndarray],
    line_phis: list[int],
    th_phi: int,
    th_r: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Produce the ``nabla_r`` stream and the ``L_ref`` symbol stream.

    Parameters
    ----------
    lines_theta, lines_r:
        Quantized theta / r per polyline, in sorted ``<PL>`` order.
    line_phis:
        Quantized polar angle of each polyline (its head's phi).
    th_phi, th_r:
        Quantized thresholds ``TH_phi`` (reference-set width) and ``TH_r``
        (flatness test).

    The per-point reference search is batched per polyline: one
    ``searchsorted`` pair finds every tail's upper neighbours, the flatness
    test and the four-candidate ``(|r - r_ref|, symbol)`` argmin run as
    array ops.  Output is byte-identical to :func:`encode_radial_py`.
    """
    nabla_parts: list[np.ndarray] = []
    symbol_parts: list[np.ndarray] = []
    ref_sets = _reference_sets(line_phis, th_phi)
    lts = [np.asarray(lt, dtype=np.int64) for lt in lines_theta]
    lrs = [np.asarray(lr, dtype=np.int64) for lr in lines_r]
    window = _ConsensusWindow()
    in_window = range(0, 0)
    prev_head_r: int | None = None
    for li, (lt, lrr) in enumerate(zip(lts, lrs)):
        refs_li = ref_sets[li]
        for j in range(in_window.stop, refs_li.stop):
            window.add(j, lts[j], lrs[j])
        for j in range(in_window.start, refs_li.start):
            window.drop(j)
        in_window = refs_li
        ct = window.thetas
        cr = window.rs
        head_ref = _head_reference_arr(ct, cr, int(lt[0]), prev_head_r)
        prev_head_r = int(lrr[0])
        line_nabla = np.empty(lt.size, dtype=np.int64)
        line_nabla[0] = lrr[0] - head_ref
        if lt.size > 1:
            r_tail = lrr[1:]
            r_bl = lrr[:-1]
            r_ul, r_um, r_ur, has_both, has_um = _tail_neighbors(ct, cr, lt[1:])
            # Situation (2a): flat local scene, bottom-left implied.
            spread = np.maximum(np.maximum(r_ul, r_ur), r_bl) - np.minimum(
                np.minimum(r_ul, r_ur), r_bl
            )
            refs = r_bl.copy()
            rows = np.flatnonzero(has_both & (spread > th_r))
            if rows.size:
                # Situation (2b): candidate matrix in L_ref symbol order, so
                # argmin's first-minimum rule is the oracle's
                # (|r - r_ref|, symbol) tie-break for free.
                cand = np.stack(
                    [r_bl[rows], r_ur[rows], r_um[rows], r_ul[rows]], axis=1
                )
                keys = np.abs(r_tail[rows, None] - cand)
                keys[~has_um[rows], SYM_UPPER_MIDDLE] = _BIG
                sym = np.argmin(keys, axis=1)
                refs[rows] = cand[np.arange(rows.size), sym]
                symbol_parts.append(sym.astype(np.int64))
            line_nabla[1:] = r_tail - refs
        nabla_parts.append(line_nabla)
    nabla = (
        np.concatenate(nabla_parts)
        if nabla_parts
        else np.empty(0, dtype=np.int64)
    )
    symbols = (
        np.concatenate(symbol_parts)
        if symbol_parts
        else np.empty(0, dtype=np.int64)
    )
    return nabla, symbols


def decode_radial(
    lines_theta: list[np.ndarray],
    line_phis: list[int],
    nabla: np.ndarray,
    symbols: np.ndarray,
    th_phi: int,
    th_r: int,
) -> list[np.ndarray]:
    """Inverse of :func:`encode_radial`: rebuild per-line r values.

    Decoding is inherently sequential inside a line (the flatness branch
    needs the just-decoded bottom-left r), but the consensus neighbour
    lookups are still batched per line before the scalar walk.
    """
    ref_sets = _reference_sets(line_phis, th_phi)
    nabla_l = nabla.tolist() if isinstance(nabla, np.ndarray) else list(nabla)
    ni = 0
    symbol_iter = iter(symbols.tolist())
    lts = [np.asarray(lt, dtype=np.int64) for lt in lines_theta]
    window = _ConsensusWindow()
    in_window = range(0, 0)
    lines_r: list[np.ndarray] = []
    prev_head_r: int | None = None
    for li, lt in enumerate(lts):
        refs_li = ref_sets[li]
        for j in range(in_window.stop, refs_li.stop):
            window.add(j, lts[j], lines_r[j])
        for j in range(in_window.start, refs_li.start):
            window.drop(j)
        in_window = refs_li
        ct = window.thetas
        cr = window.rs
        head_ref = _head_reference_arr(ct, cr, int(lt[0]), prev_head_r)
        lr: list[int] = [nabla_l[ni] + head_ref]
        ni += 1
        if lt.size > 1:
            r_ul, r_um, r_ur, has_both, has_um = _tail_neighbors(ct, cr, lt[1:])
            ul_l = r_ul.tolist()
            um_l = r_um.tolist()
            ur_l = r_ur.tolist()
            both_l = has_both.tolist()
            hum_l = has_um.tolist()
            for j in range(lt.size - 1):
                r_bl = lr[-1]
                if not both_l[j]:
                    ref = r_bl
                else:
                    ul = ul_l[j]
                    ur = ur_l[j]
                    if max(ul, ur, r_bl) - min(ul, ur, r_bl) <= th_r:
                        ref = r_bl
                    else:
                        symbol = next(symbol_iter)
                        if symbol == SYM_BOTTOM_LEFT:
                            ref = r_bl
                        elif symbol == SYM_UPPER_RIGHT:
                            ref = ur
                        elif symbol == SYM_UPPER_MIDDLE:
                            if not hum_l[j]:
                                raise ValueError(
                                    "L_ref names a missing upper-middle point"
                                )
                            ref = um_l[j]
                        elif symbol == SYM_UPPER_LEFT:
                            ref = ul
                        else:
                            raise ValueError(f"invalid L_ref symbol {symbol}")
                lr.append(nabla_l[ni] + ref)
                ni += 1
        prev_head_r = lr[0]
        lines_r.append(np.asarray(lr, dtype=np.int64))
    return lines_r


def encode_radial_py(
    lines_theta: list[np.ndarray],
    lines_r: list[np.ndarray],
    line_phis: list[int],
    th_phi: int,
    th_r: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Reference per-point loop for :func:`encode_radial` (identity oracle)."""
    nabla: list[int] = []
    symbols: list[int] = []
    ref_sets = _reference_sets(line_phis, th_phi)
    prev_head_r: int | None = None
    for li, (ltheta, lr) in enumerate(zip(lines_theta, lines_r)):
        consensus = build_consensus(
            [(lines_theta[j], lines_r[j]) for j in ref_sets[li]]
        )
        c_thetas, c_rs = consensus
        lt = ltheta.tolist()
        lrr = lr.tolist()
        for j, (t, r) in enumerate(zip(lt, lrr)):
            if j == 0:
                ref = _head_reference(c_thetas, c_rs, t, prev_head_r)
                nabla.append(r - ref)
                continue
            r_bl = lrr[j - 1]
            ref, symbol = _tail_reference(c_thetas, c_rs, t, r, r_bl, th_r)
            if symbol is not None:
                symbols.append(symbol)
            nabla.append(r - ref)
        prev_head_r = lrr[0]
    return np.asarray(nabla, dtype=np.int64), np.asarray(symbols, dtype=np.int64)


def decode_radial_py(
    lines_theta: list[np.ndarray],
    line_phis: list[int],
    nabla: np.ndarray,
    symbols: np.ndarray,
    th_phi: int,
    th_r: int,
) -> list[np.ndarray]:
    """Reference per-point loop for :func:`decode_radial` (identity oracle)."""
    ref_sets = _reference_sets(line_phis, th_phi)
    nabla_iter = iter(nabla.tolist())
    symbol_iter = iter(symbols.tolist())
    lines_r: list[np.ndarray] = []
    prev_head_r: int | None = None
    for li, ltheta in enumerate(lines_theta):
        c_thetas, c_rs = build_consensus(
            [(lines_theta[j], lines_r[j]) for j in ref_sets[li]]
        )
        lt = ltheta.tolist()
        lr: list[int] = []
        for j, t in enumerate(lt):
            if j == 0:
                ref = _head_reference(c_thetas, c_rs, t, prev_head_r)
                lr.append(next(nabla_iter) + ref)
                continue
            r_bl = lr[j - 1]
            ref = _tail_reference_decode(
                c_thetas, c_rs, t, r_bl, th_r, symbol_iter
            )
            lr.append(next(nabla_iter) + ref)
        prev_head_r = lr[0]
        lines_r.append(np.asarray(lr, dtype=np.int64))
    return lines_r


def _head_reference(
    c_thetas: list[int], c_rs: list[int], t: int, prev_head_r: int | None
) -> int:
    """Situation (1): reference for a polyline head."""
    if c_thetas:
        idx = bisect_left(c_thetas, t) - 1  # rightmost with theta < t
        if idx >= 0:
            return c_rs[idx]
    if prev_head_r is not None:
        return prev_head_r
    return 0


def _head_reference_arr(
    ct: np.ndarray, cr: np.ndarray, t: int, prev_head_r: int | None
) -> int:
    """Array-backed :func:`_head_reference` for the vectorized codecs."""
    if ct.size:
        idx = int(np.searchsorted(ct, t, side="left")) - 1
        if idx >= 0:
            return int(cr[idx])
    if prev_head_r is not None:
        return prev_head_r
    return 0


def _upper_neighbors(
    c_thetas: list[int], c_rs: list[int], t: int
) -> tuple[int | None, int | None, int | None]:
    """(r_ul, r_um, r_ur) from the consensus line around azimuth ``t``."""
    if not c_thetas:
        return None, None, None
    i_ul = bisect_left(c_thetas, t) - 1
    i_ur = bisect_right(c_thetas, t)
    r_ul = c_rs[i_ul] if i_ul >= 0 else None
    r_ur = c_rs[i_ur] if i_ur < len(c_rs) else None
    r_um = c_rs[i_ul + 1] if (i_ul >= 0 and i_ul + 1 < i_ur) else None
    return r_ul, r_um, r_ur


def _tail_reference(
    c_thetas: list[int],
    c_rs: list[int],
    t: int,
    r: int,
    r_bl: int,
    th_r: int,
) -> tuple[int, int | None]:
    """Situations (2a)/(2b): reference and (optional) recorded symbol."""
    r_ul, r_um, r_ur = _upper_neighbors(c_thetas, c_rs, t)
    if r_ul is None or r_ur is None:
        return r_bl, None
    trio = (r_ul, r_ur, r_bl)
    if max(trio) - min(trio) <= th_r:
        return r_bl, None  # flat local scene: situation (2a)
    candidates = [(SYM_BOTTOM_LEFT, r_bl), (SYM_UPPER_RIGHT, r_ur)]
    if r_um is not None:
        candidates.append((SYM_UPPER_MIDDLE, r_um))
    candidates.append((SYM_UPPER_LEFT, r_ul))
    symbol, ref = min(candidates, key=lambda sc: (abs(r - sc[1]), sc[0]))
    return ref, symbol


def _tail_reference_decode(
    c_thetas: list[int],
    c_rs: list[int],
    t: int,
    r_bl: int,
    th_r: int,
    symbol_iter,
) -> int:
    """Decoder mirror of :func:`_tail_reference` (consumes L_ref on 2b)."""
    r_ul, r_um, r_ur = _upper_neighbors(c_thetas, c_rs, t)
    if r_ul is None or r_ur is None:
        return r_bl
    trio = (r_ul, r_ur, r_bl)
    if max(trio) - min(trio) <= th_r:
        return r_bl
    symbol = next(symbol_iter)
    if symbol == SYM_BOTTOM_LEFT:
        return r_bl
    if symbol == SYM_UPPER_RIGHT:
        return r_ur
    if symbol == SYM_UPPER_MIDDLE:
        if r_um is None:
            raise ValueError("L_ref names a missing upper-middle point")
        return r_um
    if symbol == SYM_UPPER_LEFT:
        return r_ul
    raise ValueError(f"invalid L_ref symbol {symbol}")


def encode_radial_plain(lines_r: list[np.ndarray]) -> np.ndarray:
    """-Radial ablation: plain delta coding of r (vectorized).

    Tails delta against their predecessor on the line; heads delta against
    the previous line's head (the first head is stored raw).  One global
    ``diff`` plus a scatter of head-to-head deltas replaces the per-point
    loop retained in :func:`encode_radial_plain_py`.
    """
    if not lines_r:
        return np.empty(0, dtype=np.int64)
    all_r = np.concatenate([np.asarray(lr, dtype=np.int64) for lr in lines_r])
    lengths = np.fromiter(
        (len(lr) for lr in lines_r), dtype=np.int64, count=len(lines_r)
    )
    bounds = np.cumsum(lengths)
    starts = bounds - lengths
    nabla = np.empty(all_r.size, dtype=np.int64)
    nabla[0] = all_r[0]
    nabla[1:] = np.diff(all_r)
    heads = all_r[starts]
    nabla[starts[1:]] = np.diff(heads)
    return nabla


def decode_radial_plain(
    nabla: np.ndarray, line_lengths: list[int]
) -> list[np.ndarray]:
    """Inverse of :func:`encode_radial_plain`, as a segmented cumsum.

    With ``c = cumsum(nabla)``, the head values chain through
    ``heads = cumsum(nabla[starts])``, and every point is
    ``c + repeat(heads - c[starts], lengths)`` — integer-exact, so the
    output matches :func:`decode_radial_plain_py` bit for bit.
    """
    lengths = np.asarray(line_lengths, dtype=np.int64)
    if lengths.size == 0:
        return []
    nabla = np.asarray(nabla, dtype=np.int64)
    bounds = np.cumsum(lengths)
    starts = bounds - lengths
    c = np.cumsum(nabla)
    heads = np.cumsum(nabla[starts])
    values = c + np.repeat(heads - c[starts], lengths)
    return [values[s:e] for s, e in zip(starts.tolist(), bounds.tolist())]


def encode_radial_plain_py(lines_r: list[np.ndarray]) -> np.ndarray:
    """Reference loop for :func:`encode_radial_plain` (identity oracle)."""
    nabla: list[int] = []
    prev_head: int | None = None
    for lr in lines_r:
        values = lr.tolist()
        head_ref = prev_head if prev_head is not None else 0
        nabla.append(values[0] - head_ref)
        for j in range(1, len(values)):
            nabla.append(values[j] - values[j - 1])
        prev_head = values[0]
    return np.asarray(nabla, dtype=np.int64)


def decode_radial_plain_py(
    nabla: np.ndarray, line_lengths: list[int]
) -> list[np.ndarray]:
    """Reference loop for :func:`decode_radial_plain` (identity oracle)."""
    nabla_iter = iter(nabla.tolist())
    lines_r: list[np.ndarray] = []
    prev_head: int | None = None
    for length in line_lengths:
        head_ref = prev_head if prev_head is not None else 0
        values = [next(nabla_iter) + head_ref]
        for _ in range(length - 1):
            values.append(next(nabla_iter) + values[-1])
        prev_head = values[0]
        lines_r.append(np.asarray(values, dtype=np.int64))
    return lines_r
