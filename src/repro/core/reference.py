"""Radial-distance-optimized delta encoding (paper Definition 3.3, Step 8).

For every sparse point the encoder picks a *reference point* whose radial
distance is likely close, and stores ``nabla_r = r - r_ref``:

- the previous point on the same polyline (the *bottom-left* point) when the
  local scene is flat, which the decoder can detect itself; or
- the best of four spatial neighbours (bottom-left, upper-right,
  upper-middle, upper-left) when the radial jump exceeds ``TH_r``; only this
  choice needs a recorded symbol (stream ``L_ref``).

Upper neighbours come from the *consensus reference polyline* ``l*``
(Algorithm 2), an overlay of the preceding polylines whose polar angle is
within ``TH_phi`` of the current line.

Everything here operates on quantized integers: the decoder reruns exactly
the same branch logic on exactly the same values, so no branch bits are
spent outside ``L_ref``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

import numpy as np

__all__ = [
    "build_consensus",
    "encode_radial",
    "decode_radial",
    "encode_radial_plain",
    "decode_radial_plain",
]

# L_ref symbols (paper Step 8): bottom-left, upper-right, upper-middle, upper-left.
SYM_BOTTOM_LEFT = 0
SYM_UPPER_RIGHT = 1
SYM_UPPER_MIDDLE = 2
SYM_UPPER_LEFT = 3


def build_consensus(
    ref_lines: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[list[int], list[int]]:
    """Algorithm 2: overlay reference polylines into one consensus line.

    ``ref_lines`` holds ``(theta_ints, r_ints)`` pairs in ``<PL>`` order.
    Returns the consensus as parallel theta / r lists sorted by theta.
    """
    thetas: list[int] = []
    rs: list[int] = []
    for line_theta, line_r in ref_lines:
        lt = line_theta.tolist()
        lr = line_r.tolist()
        if not thetas or thetas[-1] < lt[0]:
            thetas.extend(lt)
            rs.extend(lr)
            continue
        # Replace the span of l* overlapped by this line with the line itself
        # (newer lines are vertically closer to the target polyline).  The
        # span is inclusive of equal azimuths so no stale duplicates remain.
        id_left = bisect_left(thetas, lt[0])
        id_right = bisect_right(thetas, lt[-1]) - 1
        if id_left <= id_right:
            thetas[id_left : id_right + 1] = lt
            rs[id_left : id_right + 1] = lr
        else:
            thetas[id_left:id_left] = lt
            rs[id_left:id_left] = lr
    return thetas, rs


def _reference_sets(
    line_phis: list[int], th_phi: int
) -> list[range]:
    """Per-line index ranges of reference polylines (preceding, phi-close)."""
    sets = []
    start = 0
    for i, phi in enumerate(line_phis):
        while start < i and line_phis[i] - line_phis[start] > th_phi:
            start += 1
        sets.append(range(start, i))
    return sets


def encode_radial(
    lines_theta: list[np.ndarray],
    lines_r: list[np.ndarray],
    line_phis: list[int],
    th_phi: int,
    th_r: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Produce the ``nabla_r`` stream and the ``L_ref`` symbol stream.

    Parameters
    ----------
    lines_theta, lines_r:
        Quantized theta / r per polyline, in sorted ``<PL>`` order.
    line_phis:
        Quantized polar angle of each polyline (its head's phi).
    th_phi, th_r:
        Quantized thresholds ``TH_phi`` (reference-set width) and ``TH_r``
        (flatness test).
    """
    nabla: list[int] = []
    symbols: list[int] = []
    ref_sets = _reference_sets(line_phis, th_phi)
    prev_head_r: int | None = None
    for li, (ltheta, lr) in enumerate(zip(lines_theta, lines_r)):
        consensus = build_consensus(
            [(lines_theta[j], lines_r[j]) for j in ref_sets[li]]
        )
        c_thetas, c_rs = consensus
        lt = ltheta.tolist()
        lrr = lr.tolist()
        for j, (t, r) in enumerate(zip(lt, lrr)):
            if j == 0:
                ref = _head_reference(c_thetas, c_rs, t, prev_head_r)
                nabla.append(r - ref)
                continue
            r_bl = lrr[j - 1]
            ref, symbol = _tail_reference(c_thetas, c_rs, t, r, r_bl, th_r)
            if symbol is not None:
                symbols.append(symbol)
            nabla.append(r - ref)
        prev_head_r = lrr[0]
    return np.asarray(nabla, dtype=np.int64), np.asarray(symbols, dtype=np.int64)


def decode_radial(
    lines_theta: list[np.ndarray],
    line_phis: list[int],
    nabla: np.ndarray,
    symbols: np.ndarray,
    th_phi: int,
    th_r: int,
) -> list[np.ndarray]:
    """Inverse of :func:`encode_radial`: rebuild per-line r values."""
    ref_sets = _reference_sets(line_phis, th_phi)
    nabla_iter = iter(nabla.tolist())
    symbol_iter = iter(symbols.tolist())
    lines_r: list[np.ndarray] = []
    prev_head_r: int | None = None
    for li, ltheta in enumerate(lines_theta):
        c_thetas, c_rs = build_consensus(
            [(lines_theta[j], lines_r[j]) for j in ref_sets[li]]
        )
        lt = ltheta.tolist()
        lr: list[int] = []
        for j, t in enumerate(lt):
            if j == 0:
                ref = _head_reference(c_thetas, c_rs, t, prev_head_r)
                lr.append(next(nabla_iter) + ref)
                continue
            r_bl = lr[j - 1]
            ref = _tail_reference_decode(
                c_thetas, c_rs, t, r_bl, th_r, symbol_iter
            )
            lr.append(next(nabla_iter) + ref)
        prev_head_r = lr[0]
        lines_r.append(np.asarray(lr, dtype=np.int64))
    return lines_r


def _head_reference(
    c_thetas: list[int], c_rs: list[int], t: int, prev_head_r: int | None
) -> int:
    """Situation (1): reference for a polyline head."""
    if c_thetas:
        idx = bisect_left(c_thetas, t) - 1  # rightmost with theta < t
        if idx >= 0:
            return c_rs[idx]
    if prev_head_r is not None:
        return prev_head_r
    return 0


def _upper_neighbors(
    c_thetas: list[int], c_rs: list[int], t: int
) -> tuple[int | None, int | None, int | None]:
    """(r_ul, r_um, r_ur) from the consensus line around azimuth ``t``."""
    if not c_thetas:
        return None, None, None
    i_ul = bisect_left(c_thetas, t) - 1
    i_ur = bisect_right(c_thetas, t)
    r_ul = c_rs[i_ul] if i_ul >= 0 else None
    r_ur = c_rs[i_ur] if i_ur < len(c_rs) else None
    r_um = c_rs[i_ul + 1] if (i_ul >= 0 and i_ul + 1 < i_ur) else None
    return r_ul, r_um, r_ur


def _tail_reference(
    c_thetas: list[int],
    c_rs: list[int],
    t: int,
    r: int,
    r_bl: int,
    th_r: int,
) -> tuple[int, int | None]:
    """Situations (2a)/(2b): reference and (optional) recorded symbol."""
    r_ul, r_um, r_ur = _upper_neighbors(c_thetas, c_rs, t)
    if r_ul is None or r_ur is None:
        return r_bl, None
    trio = (r_ul, r_ur, r_bl)
    if max(trio) - min(trio) <= th_r:
        return r_bl, None  # flat local scene: situation (2a)
    candidates = [(SYM_BOTTOM_LEFT, r_bl), (SYM_UPPER_RIGHT, r_ur)]
    if r_um is not None:
        candidates.append((SYM_UPPER_MIDDLE, r_um))
    candidates.append((SYM_UPPER_LEFT, r_ul))
    symbol, ref = min(candidates, key=lambda sc: (abs(r - sc[1]), sc[0]))
    return ref, symbol


def _tail_reference_decode(
    c_thetas: list[int],
    c_rs: list[int],
    t: int,
    r_bl: int,
    th_r: int,
    symbol_iter,
) -> int:
    """Decoder mirror of :func:`_tail_reference` (consumes L_ref on 2b)."""
    r_ul, r_um, r_ur = _upper_neighbors(c_thetas, c_rs, t)
    if r_ul is None or r_ur is None:
        return r_bl
    trio = (r_ul, r_ur, r_bl)
    if max(trio) - min(trio) <= th_r:
        return r_bl
    symbol = next(symbol_iter)
    if symbol == SYM_BOTTOM_LEFT:
        return r_bl
    if symbol == SYM_UPPER_RIGHT:
        return r_ur
    if symbol == SYM_UPPER_MIDDLE:
        if r_um is None:
            raise ValueError("L_ref names a missing upper-middle point")
        return r_um
    if symbol == SYM_UPPER_LEFT:
        return r_ul
    raise ValueError(f"invalid L_ref symbol {symbol}")


def encode_radial_plain(lines_r: list[np.ndarray]) -> np.ndarray:
    """-Radial ablation: plain delta coding of r.

    Tails delta against their predecessor on the line; heads delta against
    the previous line's head (the first head is stored raw).
    """
    nabla: list[int] = []
    prev_head: int | None = None
    for lr in lines_r:
        values = lr.tolist()
        head_ref = prev_head if prev_head is not None else 0
        nabla.append(values[0] - head_ref)
        for j in range(1, len(values)):
            nabla.append(values[j] - values[j - 1])
        prev_head = values[0]
    return np.asarray(nabla, dtype=np.int64)


def decode_radial_plain(
    nabla: np.ndarray, line_lengths: list[int]
) -> list[np.ndarray]:
    """Inverse of :func:`encode_radial_plain`."""
    nabla_iter = iter(nabla.tolist())
    lines_r: list[np.ndarray] = []
    prev_head: int | None = None
    for length in line_lengths:
        head_ref = prev_head if prev_head is not None else 0
        values = [next(nabla_iter) + head_ref]
        for _ in range(length - 1):
            values.append(next(nabla_iter) + values[-1])
        prev_head = values[0]
        lines_r.append(np.asarray(values, dtype=np.int64))
    return lines_r
