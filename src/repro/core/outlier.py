"""Optimized outlier compression (paper Section 3.6).

Outliers — sparse points on no polyline — are few but must still meet the
error bound.  The paper's optimized scheme builds a 2D quadtree on (x, y)
and carries z as a delta-coded attribute, because LiDAR scenes are wide and
flat; an octree would waste its z extent.  The octree and raw ("None")
alternatives of Table 2 are provided for the comparison benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import DBGCParams
from repro.entropy.arithmetic import decode_int_sequence
from repro.entropy.backend import decode_tagged_ints, encode_tagged_ints
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.octree.codec import OctreeCodec
from repro.octree.quadtree import QuadtreeCodec

__all__ = ["encode_outliers", "decode_outliers"]

_MODE_BYTES = {"quadtree": 0, "octree": 1, "none": 2}
_MODE_NAMES = {v: k for k, v in _MODE_BYTES.items()}


def encode_outliers(
    xyz: np.ndarray, params: DBGCParams
) -> tuple[bytes, np.ndarray]:
    """Compress outlier points; returns (payload, original->decoded order)."""
    xyz = np.asarray(xyz, dtype=np.float64)
    n = len(xyz)
    out = bytearray([_MODE_BYTES[params.outlier_mode]])
    encode_uvarint(n, out)
    if n == 0:
        return bytes(out), np.empty(0, dtype=np.int64)
    if params.outlier_mode == "quadtree":
        codec = QuadtreeCodec(params.leaf_side, backend=params.entropy_backend)
        xy = xyz[:, :2]
        tree_payload = codec.encode(xy)
        mapping = codec.mapping(xy)
        encode_uvarint(len(tree_payload), out)
        out += tree_payload
        # z travels in decoded (Morton) order: quantize, delta, entropy-code.
        order = np.argsort(mapping, kind="stable")  # decoded position -> original
        z_ints = np.round(xyz[order, 2] / params.leaf_side).astype(np.int64)
        out += encode_tagged_ints(
            np.diff(z_ints, prepend=np.int64(0)), params.entropy_backend
        )
        return bytes(out), mapping
    if params.outlier_mode == "octree":
        codec = OctreeCodec(params.leaf_side, backend=params.entropy_backend)
        out += codec.encode(xyz)
        return bytes(out), codec.mapping(xyz)
    # "none": raw float32 coordinates (the Table 2 no-compression baseline).
    out += xyz.astype("<f4").tobytes()
    return bytes(out), np.arange(n, dtype=np.int64)


def decode_outliers(payload: bytes, params: DBGCParams, version: int = 2) -> np.ndarray:
    """Inverse of :func:`encode_outliers`; points in codec order.

    ``version=1`` selects the legacy sub-codec layouts (checksum-less z
    stream, raw arithmetic quadtree occupancy).
    """
    if not payload:
        raise ValueError("empty outlier payload")
    mode = _MODE_NAMES.get(payload[0])
    if mode is None:
        raise ValueError(f"unknown outlier mode byte {payload[0]}")
    n, pos = decode_uvarint(payload, 1)
    if n == 0:
        return np.empty((0, 3), dtype=np.float64)
    if mode == "quadtree":
        tree_size, pos = decode_uvarint(payload, pos)
        codec = QuadtreeCodec(params.leaf_side)
        xy = codec.decode(payload[pos : pos + tree_size], version=version)
        pos += tree_size
        if version == 1:
            z_ints = np.cumsum(decode_int_sequence(payload[pos:], checksum=False))
        else:
            z_ints = np.cumsum(decode_tagged_ints(payload[pos:]))
        if len(z_ints) != len(xy):
            raise ValueError("outlier z stream does not match quadtree")
        return np.column_stack([xy, z_ints.astype(np.float64) * params.leaf_side])
    if mode == "octree":
        return OctreeCodec(params.leaf_side).decode(payload[pos:], version=version)
    return (
        np.frombuffer(payload, dtype="<f4", count=3 * n, offset=pos)
        .reshape(n, 3)
        .astype(np.float64)
    )
