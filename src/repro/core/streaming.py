"""Multi-frame stream compression.

The paper scopes itself to single-frame compression and notes it "can be a
building block in compressing point cloud streams" (Section 1).  This
module is that building block's container: a stream file holds a header and
a sequence of independently decodable DBGC frames, so a receiver can seek,
drop, or late-join — the right trade-off for lossy transports like the
paper's 4G uplink.

Stream layout::

    b"DBGS" | version u8 | uvarint n_frames (0 = unknown/append mode)
    per frame: uvarint payload_size | payload (a standalone DBGC stream)
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import BinaryIO, Iterable, Iterator

import numpy as np

from repro.core.params import DBGCParams
from repro.core.pipeline import DBGCCompressor, DBGCDecompressor
from repro.datasets.sensors import SensorModel
from repro.entropy.varint import encode_uvarint
from repro.geometry.points import PointCloud

__all__ = ["StreamStats", "FrameStreamWriter", "FrameStreamReader", "compress_stream"]

_MAGIC = b"DBGS"
_VERSION = 1


@dataclass
class StreamStats:
    """Aggregate statistics of a compressed frame stream."""

    n_frames: int = 0
    total_points: int = 0
    total_raw_bytes: int = 0
    total_compressed_bytes: int = 0
    frame_sizes: list[int] = field(default_factory=list)

    def record(self, n_points: int, payload_size: int) -> None:
        self.n_frames += 1
        self.total_points += n_points
        self.total_raw_bytes += n_points * 12
        self.total_compressed_bytes += payload_size
        self.frame_sizes.append(payload_size)

    @property
    def compression_ratio(self) -> float:
        """Raw-to-compressed ratio; 0.0 before any payload is recorded.

        0.0 (not inf) so dashboards and JSON reports stay finite on an
        empty or not-yet-started stream.
        """
        if self.total_compressed_bytes == 0:
            return 0.0
        return self.total_raw_bytes / self.total_compressed_bytes

    def bandwidth_mbps(self, frames_per_second: float) -> float:
        """Mean link bandwidth needed at the given frame rate."""
        if not self.frame_sizes or self.n_frames == 0:
            return 0.0
        mean_size = self.total_compressed_bytes / self.n_frames
        return 8.0 * frames_per_second * mean_size / 1e6


def _read_uvarint(stream: BinaryIO, first: bytes | None = None) -> int:
    """Read one LEB128 varint from ``stream``.

    ``first`` optionally supplies an already-read leading byte, so callers
    that probe for end-of-stream (read one byte, see if it is empty) can
    hand it back instead of duplicating the decode loop — the single
    implementation keeps the over-long guard on every path.
    """
    result = 0
    shift = 0
    while True:
        byte = first if shift == 0 and first is not None else stream.read(1)
        if not byte:
            raise ValueError("truncated stream varint")
        value = byte[0]
        result |= (value & 0x7F) << shift
        if not value & 0x80:
            return result
        shift += 7
        if shift > 70:
            raise ValueError("stream varint too long")


class FrameStreamWriter:
    """Append compressed frames to a binary stream."""

    def __init__(
        self,
        sink: BinaryIO,
        params: DBGCParams | None = None,
        sensor: SensorModel | None = None,
    ) -> None:
        self._sink = sink
        self.compressor = DBGCCompressor(params, sensor=sensor)
        self.stats = StreamStats()
        header = bytearray(_MAGIC)
        header.append(_VERSION)
        encode_uvarint(0, header)  # append mode: reader counts frames itself
        self._sink.write(bytes(header))

    def write_frame(
        self, cloud: PointCloud, attributes: dict[str, np.ndarray] | None = None
    ) -> int:
        """Compress and append one frame; returns the payload size."""
        payload = self.compressor.compress(cloud, attributes=attributes)
        size_prefix = bytearray()
        encode_uvarint(len(payload), size_prefix)
        self._sink.write(bytes(size_prefix))
        self._sink.write(payload)
        self.stats.record(len(cloud), len(payload))
        return len(payload)


class FrameStreamReader:
    """Iterate the frames of a stream written by :class:`FrameStreamWriter`."""

    def __init__(self, source: BinaryIO) -> None:
        self._source = source
        magic = source.read(4)
        if magic != _MAGIC:
            raise ValueError("not a DBGC frame stream (bad magic)")
        version = source.read(1)
        if not version or version[0] != _VERSION:
            raise ValueError("unsupported stream version")
        _read_uvarint(source)  # declared frame count (informational)
        self._decompressor = DBGCDecompressor()

    def payloads(self) -> Iterator[bytes]:
        """Yield raw per-frame payloads without decompressing."""
        while True:
            probe = self._source.read(1)
            if not probe:
                return  # clean end-of-stream between frames
            # Hand the probe byte back to the shared varint decoder, which
            # enforces the over-long guard a corrupt stream would trip.
            size = _read_uvarint(self._source, first=probe)
            payload = self._source.read(size)
            if len(payload) != size:
                raise ValueError("truncated frame payload")
            yield payload

    def __iter__(self) -> Iterator[PointCloud]:
        for payload in self.payloads():
            yield self._decompressor.decompress(payload)


def compress_stream(
    frames: Iterable[PointCloud | tuple[PointCloud, dict[str, np.ndarray] | None]],
    params: DBGCParams | None = None,
    sensor: SensorModel | None = None,
) -> tuple[bytes, StreamStats]:
    """One-shot: compress a frame sequence into a stream blob + stats.

    Each item is either a bare :class:`PointCloud` or a
    ``(cloud, attributes)`` pair; attributes ride inside the per-frame
    payload exactly as with :meth:`FrameStreamWriter.write_frame`, so the
    blob is byte-identical to writing the same frames through a writer.
    """
    buffer = io.BytesIO()
    writer = FrameStreamWriter(buffer, params=params, sensor=sensor)
    for item in frames:
        if isinstance(item, tuple):
            cloud, attributes = item
            writer.write_frame(cloud, attributes=attributes)
        else:
            writer.write_frame(item)
    return buffer.getvalue(), writer.stats
