"""Multi-frame stream compression.

The paper scopes itself to single-frame compression and notes it "can be a
building block in compressing point cloud streams" (Section 1).  This
module is that building block's container: a stream file holds a header and
a sequence of DBGC frames.  By default every frame is independently
decodable, so a receiver can seek, drop, or late-join — the right trade-off
for lossy transports like the paper's 4G uplink.  With
``DBGCParams(temporal=True)`` non-keyframes are delta-coded against the
previous frame (format v3, :mod:`repro.core.temporal`); the periodic
keyframes then carry the seek/late-join property for the whole stream.

Stream layout::

    b"DBGS" | version u8 | uvarint n_frames (0 = unknown/append mode)
    per frame: uvarint payload_size | payload (a standalone DBGC stream)

On a seekable sink the writer reserves a fixed-width (3-byte, non-canonical
LEB128) slot for ``n_frames`` and backpatches the real count on
:meth:`FrameStreamWriter.close`; on pipes the canonical single zero byte is
kept and the count stays "unknown".  Both encodings are valid LEB128, so
readers are unaffected.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import BinaryIO, Iterable, Iterator

import numpy as np

from repro.core.container import container_version
from repro.core.params import DBGCParams
from repro.core.pipeline import DBGCCompressor
from repro.core.temporal import KEYFRAME_MAX_VERSION, TemporalContext, TemporalDecoder
from repro.datasets.sensors import SensorModel
from repro.entropy.varint import encode_uvarint
from repro.geometry.points import PointCloud

__all__ = ["StreamStats", "FrameStreamWriter", "FrameStreamReader", "compress_stream"]

_MAGIC = b"DBGS"
_VERSION = 1
#: Offset of the n_frames varint relative to the stream header start.
_COUNT_OFFSET = len(_MAGIC) + 1
#: Largest frame count the 3-byte backpatch slot can represent.
_COUNT_MAX = (1 << 21) - 1


@dataclass
class StreamStats:
    """Aggregate statistics of a compressed frame stream."""

    n_frames: int = 0
    total_points: int = 0
    total_raw_bytes: int = 0
    total_compressed_bytes: int = 0
    frame_sizes: list[int] = field(default_factory=list)

    def record(self, n_points: int, payload_size: int, n_attributes: int = 0) -> None:
        """Account one frame: raw size is xyz (3 x f32) plus any per-point
        attribute channels (f32 each) actually carried by the payload."""
        self.n_frames += 1
        self.total_points += n_points
        self.total_raw_bytes += n_points * (12 + 4 * n_attributes)
        self.total_compressed_bytes += payload_size
        self.frame_sizes.append(payload_size)

    @property
    def compression_ratio(self) -> float:
        """Raw-to-compressed ratio; 0.0 before any payload is recorded.

        0.0 (not inf) so dashboards and JSON reports stay finite on an
        empty or not-yet-started stream.
        """
        if self.total_compressed_bytes == 0:
            return 0.0
        return self.total_raw_bytes / self.total_compressed_bytes

    def bandwidth_mbps(self, frames_per_second: float) -> float:
        """Mean link bandwidth needed at the given frame rate."""
        if not self.frame_sizes or self.n_frames == 0:
            return 0.0
        mean_size = self.total_compressed_bytes / self.n_frames
        return 8.0 * frames_per_second * mean_size / 1e6


def _read_uvarint(stream: BinaryIO, first: bytes | None = None) -> int:
    """Read one LEB128 varint from ``stream``.

    ``first`` optionally supplies an already-read leading byte, so callers
    that probe for end-of-stream (read one byte, see if it is empty) can
    hand it back instead of duplicating the decode loop — the single
    implementation keeps the over-long guard on every path.
    """
    result = 0
    shift = 0
    while True:
        byte = first if shift == 0 and first is not None else stream.read(1)
        if not byte:
            raise ValueError("truncated stream varint")
        value = byte[0]
        result |= (value & 0x7F) << shift
        if not value & 0x80:
            return result
        shift += 7
        if shift > 70:
            raise ValueError("stream varint too long")


class FrameStreamWriter:
    """Append compressed frames to a binary stream.

    With ``params.temporal`` enabled, the writer holds the inter-frame
    predictor state (:class:`~repro.core.temporal.TemporalContext`) and
    routes every frame through
    :meth:`~repro.core.pipeline.DBGCCompressor.compress_temporal`: frame
    ``i`` is an independently decodable keyframe when
    ``i % keyframe_interval == 0``, otherwise a v3 delta frame predicted
    from frame ``i - 1``.  Pass each frame's ``ego_position`` so deltas can
    motion-compensate the sensor's travel.

    Use as a context manager (or call :meth:`close`) so the stream header's
    frame count is backpatched on seekable sinks; the sink itself is never
    closed by the writer.
    """

    def __init__(
        self,
        sink: BinaryIO,
        params: DBGCParams | None = None,
        sensor: SensorModel | None = None,
    ) -> None:
        self._sink = sink
        self.compressor = DBGCCompressor(params, sensor=sensor)
        self.stats = StreamStats()
        self._closed = False
        self._temporal_context = (
            TemporalContext() if self.compressor.params.temporal else None
        )
        self._prev_position: tuple[float, ...] | None = None
        try:
            self._seekable = bool(sink.seekable())
        except (AttributeError, OSError):
            self._seekable = False
        self._header_start = sink.tell() if self._seekable else 0
        header = bytearray(_MAGIC)
        header.append(_VERSION)
        if self._seekable:
            # Reserve a fixed-width slot for the frame count: a padded
            # (non-canonical but valid) LEB128 zero that close() rewrites
            # in place.  Its terminal byte is 0x00, so the header still
            # ends at the first zero byte exactly like the canonical form.
            header.extend(b"\x80\x80\x00")
        else:
            encode_uvarint(0, header)  # append mode: reader counts frames
        self._sink.write(bytes(header))

    def write_frame(
        self,
        cloud: PointCloud,
        attributes: dict[str, np.ndarray] | None = None,
        ego_position: tuple[float, ...] | None = None,
    ) -> int:
        """Compress and append one frame; returns the payload size.

        ``ego_position`` is the sensor's world position when the frame was
        captured ((x, y) or (x, y, z), meters).  It is only used in
        temporal mode, where consecutive positions give the ego-motion
        delta that motion-compensates the previous frame's geometry;
        omitting it falls back to a zero delta (still correct, just a
        weaker predictor).
        """
        if self._closed:
            raise ValueError("stream writer is closed")
        if self._temporal_context is not None:
            payload = self._compress_temporal(cloud, attributes, ego_position)
        else:
            payload = self.compressor.compress(cloud, attributes=attributes)
        size_prefix = bytearray()
        encode_uvarint(len(payload), size_prefix)
        self._sink.write(bytes(size_prefix))
        self._sink.write(payload)
        self.stats.record(
            len(cloud), len(payload), n_attributes=len(attributes) if attributes else 0
        )
        return len(payload)

    def _compress_temporal(
        self,
        cloud: PointCloud,
        attributes: dict[str, np.ndarray] | None,
        ego_position: tuple[float, ...] | None,
    ) -> bytes:
        ego_delta = (0.0, 0.0, 0.0)
        if ego_position is not None and self._prev_position is not None:
            prev = self._prev_position
            ego_delta = (
                float(ego_position[0]) - float(prev[0]),
                float(ego_position[1]) - float(prev[1]),
                (float(ego_position[2]) - float(prev[2]))
                if len(ego_position) > 2 and len(prev) > 2
                else 0.0,
            )
        if ego_position is not None:
            self._prev_position = tuple(float(v) for v in ego_position)
        result = self.compressor.compress_temporal(
            cloud, self._temporal_context, ego_delta=ego_delta, attributes=attributes
        )
        return result.payload

    def close(self) -> None:
        """Finalize the stream: backpatch ``n_frames`` on seekable sinks.

        Idempotent, and never closes the underlying sink (the caller may
        be writing more than one stream, or own a socket).  On
        non-seekable sinks this is a no-op and the declared count stays 0
        (unknown), which readers already handle by counting frames.
        """
        if self._closed:
            return
        self._closed = True
        if not self._seekable:
            return
        n = self.stats.n_frames
        if n > _COUNT_MAX:
            return  # slot too small; leave the count "unknown"
        patched = bytes(
            [0x80 | (n & 0x7F), 0x80 | ((n >> 7) & 0x7F), (n >> 14) & 0x7F]
        )
        end = self._sink.tell()
        self._sink.seek(self._header_start + _COUNT_OFFSET)
        self._sink.write(patched)
        self._sink.seek(end)

    def __enter__(self) -> "FrameStreamWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FrameStreamReader:
    """Iterate the frames of a stream written by :class:`FrameStreamWriter`.

    Decoding is stateful: payloads run through a
    :class:`~repro.core.temporal.TemporalDecoder`, so streams containing v3
    delta frames decode transparently, while purely intra (v1/v2) streams
    behave exactly as before.  ``n_frames`` exposes the header's declared
    count (0 when the writer could not backpatch it).
    """

    def __init__(self, source: BinaryIO) -> None:
        self._source = source
        magic = source.read(4)
        if magic != _MAGIC:
            raise ValueError("not a DBGC frame stream (bad magic)")
        version = source.read(1)
        if not version or version[0] != _VERSION:
            raise ValueError("unsupported stream version")
        self.n_frames = _read_uvarint(source)  # declared count (0 = unknown)
        self._decoder = TemporalDecoder()

    def payloads(self) -> Iterator[bytes]:
        """Yield raw per-frame payloads without decompressing."""
        while True:
            probe = self._source.read(1)
            if not probe:
                return  # clean end-of-stream between frames
            # Hand the probe byte back to the shared varint decoder, which
            # enforces the over-long guard a corrupt stream would trip.
            size = _read_uvarint(self._source, first=probe)
            payload = self._source.read(size)
            if len(payload) != size:
                raise ValueError("truncated frame payload")
            yield payload

    def frames(self, recover: bool = False) -> Iterator[PointCloud]:
        """Decode the stream's frames in order.

        ``recover=True`` is the late-join/seek mode: delta frames are
        skipped (their predictor — the preceding frame — is not available)
        until the first keyframe, identified by its container version byte,
        then decoding proceeds statefully.  This is how a reader resumes
        after dropping into the middle of a temporal stream.
        """
        waiting = recover
        for payload in self.payloads():
            if waiting:
                if container_version(payload) > KEYFRAME_MAX_VERSION:
                    continue  # delta frame: undecodable without its predecessor
                waiting = False
            yield self._decoder.decode(payload)

    def __iter__(self) -> Iterator[PointCloud]:
        return self.frames()


def compress_stream(
    frames: Iterable[PointCloud | tuple[PointCloud, dict[str, np.ndarray] | None]],
    params: DBGCParams | None = None,
    sensor: SensorModel | None = None,
) -> tuple[bytes, StreamStats]:
    """One-shot: compress a frame sequence into a stream blob + stats.

    Each item is either a bare :class:`PointCloud` or a
    ``(cloud, attributes)`` pair; attributes ride inside the per-frame
    payload exactly as with :meth:`FrameStreamWriter.write_frame`, so the
    blob is byte-identical to writing the same frames through a writer
    (and closing it — the blob's header carries the backpatched count).
    """
    buffer = io.BytesIO()
    with FrameStreamWriter(buffer, params=params, sensor=sensor) as writer:
        for item in frames:
            if isinstance(item, tuple):
                cloud, attributes = item
                writer.write_frame(cloud, attributes=attributes)
            else:
                writer.write_frame(item)
    return buffer.getvalue(), writer.stats
